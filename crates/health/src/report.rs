//! Replay a flight-recorder timeline into a human run report.
//!
//! Four sections, one artifact: latency histograms (per phase and whole
//! step), per-rank imbalance heat rows, the health-event timeline, and
//! a measured-vs-`dnscost`-model comparison — the offline half of the
//! run-health layer, consumed by the `dns-report` binary and the e2e
//! tests.

use crate::schema::{FlightEvent, HealthEvent};
use dns_netmodel::calibration::{rel_err, Calibration, Observation, StepCounts, StepSeconds};
use dns_netmodel::dnscost::{step_workload, Grid};
use dns_telemetry::{fmt_seconds, Histogram};
use std::collections::BTreeMap;

/// Aggregated view of one flight-recorder file.
pub struct Replay {
    events: Vec<FlightEvent>,
    /// Grid/topology from the first run_start, if any.
    run: Option<(Grid, usize, usize, u64)>, // grid, pa, pb, steps
    attempts: usize,
    /// Per-phase latency histograms over per-rank step records.
    pub wall: Histogram,
    pub transpose: Histogram,
    pub fft: Histogram,
    pub ns: Histogram,
    /// Whole-step critical path: max wall over ranks, per step.
    pub step_critical: Histogram,
    /// Per-rank running totals over every step record.
    per_rank: BTreeMap<usize, RankTotals>,
    distinct_steps: usize,
    total_bytes: u64,
}

/// Sums of one rank's step records, for the imbalance heat rows.
#[derive(Default)]
struct RankTotals {
    steps: u64,
    busy_s: f64,
    wait_s: f64,
    overlap_s: f64,
    wall_s: f64,
    msgs: u64,
    bytes: u64,
}

impl Replay {
    /// Fold a parsed timeline into histograms and per-rank totals.
    pub fn new(events: Vec<FlightEvent>) -> Replay {
        let mut r = Replay {
            events: Vec::new(),
            run: None,
            attempts: 0,
            wall: Histogram::new(),
            transpose: Histogram::new(),
            fft: Histogram::new(),
            ns: Histogram::new(),
            step_critical: Histogram::new(),
            per_rank: BTreeMap::new(),
            distinct_steps: 0,
            total_bytes: 0,
        };
        let mut critical: BTreeMap<u64, f64> = BTreeMap::new();
        for ev in &events {
            match ev {
                FlightEvent::RunStart {
                    nx,
                    ny,
                    nz,
                    pa,
                    pb,
                    steps,
                    ..
                } => {
                    r.attempts += 1;
                    if r.run.is_none() {
                        r.run = Some((
                            Grid {
                                nx: *nx,
                                ny: *ny,
                                nz: *nz,
                            },
                            *pa,
                            *pb,
                            *steps,
                        ));
                    }
                }
                FlightEvent::Step {
                    step,
                    rank,
                    wall_s,
                    transpose_s,
                    fft_s,
                    ns_s,
                    recv_wait_s,
                    overlap_s,
                    busy_s,
                    msgs,
                    bytes,
                } => {
                    r.wall.record(*wall_s);
                    r.transpose.record(*transpose_s);
                    r.fft.record(*fft_s);
                    r.ns.record(*ns_s);
                    let worst = critical.entry(*step).or_insert(0.0);
                    *worst = worst.max(*wall_s);
                    let slot = r.per_rank.entry(*rank).or_default();
                    slot.steps += 1;
                    slot.busy_s += *busy_s;
                    slot.wait_s += *recv_wait_s;
                    slot.overlap_s += *overlap_s;
                    slot.wall_s += *wall_s;
                    slot.msgs += *msgs;
                    slot.bytes += *bytes;
                    r.total_bytes += *bytes;
                }
                _ => {}
            }
        }
        for (_, w) in critical.iter() {
            r.step_critical.record(*w);
        }
        r.distinct_steps = critical.len();
        r.events = events;
        r
    }

    /// Ranks that were ever flagged as stragglers, ascending.
    pub fn flagged_stragglers(&self) -> Vec<usize> {
        let mut ranks: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match e {
                FlightEvent::Health(HealthEvent::Straggler { rank, .. }) => Some(*rank),
                _ => None,
            })
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Render the full report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.header(&mut out);
        self.latency_table(&mut out);
        self.heat_rows(&mut out);
        self.timeline(&mut out);
        self.model_comparison(&mut out);
        out
    }

    fn header(&self, out: &mut String) {
        out.push_str("== dns-report: run health ==\n");
        match &self.run {
            Some((g, pa, pb, steps)) => out.push_str(&format!(
                "grid {}x{}x{} on {pa}x{pb} ranks, {steps} steps planned, \
                 {} attempt(s), {} step(s) recorded\n",
                g.nx, g.ny, g.nz, self.attempts, self.distinct_steps
            )),
            None => out.push_str("no run_start event found\n"),
        }
    }

    fn latency_table(&self, out: &mut String) {
        out.push_str("\n-- step latency (per rank-step) --\n");
        out.push_str(&format!(
            "{:<14} {:>7} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
            "phase", "n", "p50", "p90", "p99", "max", "mean"
        ));
        let rows: [(&str, &Histogram); 5] = [
            ("step wall", &self.wall),
            ("transpose", &self.transpose),
            ("fft", &self.fft),
            ("ns_advance", &self.ns),
            ("step critical", &self.step_critical),
        ];
        for (name, h) in rows {
            out.push_str(&format!(
                "{:<14} {:>7} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
                name,
                h.count(),
                fmt_seconds(h.quantile(0.50)),
                fmt_seconds(h.quantile(0.90)),
                fmt_seconds(h.quantile(0.99)),
                fmt_seconds(h.max()),
                fmt_seconds(h.mean()),
            ));
        }
    }

    fn heat_rows(&self, out: &mut String) {
        if self.per_rank.is_empty() {
            return;
        }
        out.push_str(
            "\n-- per-rank imbalance (busy = wall - recv wait; \
             ovl = exchange time hidden behind compute) --\n",
        );
        let means: BTreeMap<usize, f64> = self
            .per_rank
            .iter()
            .map(|(&r, t)| {
                let n = t.steps;
                (r, if n > 0 { t.busy_s / n as f64 } else { 0.0 })
            })
            .collect();
        let grand = means.values().sum::<f64>() / means.len() as f64;
        let peak = means.values().cloned().fold(0.0, f64::max);
        const WIDTH: usize = 24;
        for (&rank, t) in &self.per_rank {
            let (n, wait, overlap, wall) = (t.steps, t.wait_s, t.overlap_s, t.wall_s);
            let (msgs, bytes) = (t.msgs, t.bytes);
            let mean_busy = means[&rank];
            let bar_len = if peak > 0.0 {
                ((mean_busy / peak) * WIDTH as f64).round() as usize
            } else {
                0
            };
            let bar: String = "#".repeat(bar_len) + &".".repeat(WIDTH - bar_len.min(WIDTH));
            let wait_share = if wall > 0.0 { wait / wall * 100.0 } else { 0.0 };
            // Overlap fraction per step: share of this rank's exchange
            // exposure (hidden + still-blocking wait) that the pipelined
            // transposes hid behind compute. 0% under blocking exchanges.
            let exchange = overlap + wait;
            let ovl_share = if exchange > 0.0 {
                overlap / exchange * 100.0
            } else {
                0.0
            };
            let vs_mean = if grand > 0.0 { mean_busy / grand } else { 0.0 };
            out.push_str(&format!(
                "rank {rank:>3} |{bar}| busy {}/step ({vs_mean:.2}x mean)  wait {wait_share:>4.1}%  \
                 ovl {ovl_share:>4.1}%  {msgs} msgs {bytes} B over {n} steps\n",
                fmt_seconds(mean_busy)
            ));
        }
    }

    fn timeline(&self, out: &mut String) {
        let mut lines = Vec::new();
        for ev in &self.events {
            match ev {
                FlightEvent::Health(HealthEvent::Straggler {
                    step,
                    rank,
                    ratio,
                    factor,
                    consecutive,
                }) => lines.push(format!(
                    "step {step:>6}  STRAGGLER rank {rank}: busy {ratio:.2}x median \
                     (factor {factor}, {consecutive} consecutive)"
                )),
                FlightEvent::Health(HealthEvent::SentinelWarn {
                    step,
                    sentinel,
                    value,
                    limit,
                }) => lines.push(format!(
                    "step {step:>6}  WARN {}: {value:.4e} over limit {limit:.4e}",
                    sentinel.label()
                )),
                FlightEvent::Checkpoint { step, attempt } => lines.push(format!(
                    "step {step:>6}  checkpoint committed (attempt {attempt})"
                )),
                FlightEvent::Recovery {
                    attempt,
                    kind,
                    detail,
                } => {
                    let detail = if detail.is_empty() {
                        String::new()
                    } else {
                        format!(": {detail}")
                    };
                    lines.push(format!("attempt {attempt}  recovery {kind}{detail}"))
                }
                FlightEvent::RunStart {
                    attempt,
                    resumed_from,
                    ..
                } => lines.push(format!(
                    "attempt {attempt}  run start (resumed from step {resumed_from})"
                )),
                FlightEvent::RunEnd { steps_run, wall_s } => lines.push(format!(
                    "run end: {steps_run} steps in {}",
                    fmt_seconds(*wall_s)
                )),
                _ => {}
            }
        }
        if !lines.is_empty() {
            out.push_str("\n-- health-event timeline --\n");
            for l in lines {
                out.push_str(&l);
                out.push('\n');
            }
        }
    }

    fn model_comparison(&self, out: &mut String) {
        let Some((grid, pa, pb, _)) = &self.run else {
            return;
        };
        if self.step_critical.is_empty() {
            return;
        }
        let w = step_workload(grid);
        let mean_step = self.step_critical.mean();
        let attained = w.total_flops() / mean_step;
        let measured_bytes = self.total_bytes as f64 / self.distinct_steps.max(1) as f64;
        out.push_str("\n-- measured vs dnscost model --\n");
        out.push_str(&format!(
            "workload/step: {:.3e} flops ({:.3e} fft + {:.3e} ns), {:.3e} transpose DDR bytes\n",
            w.total_flops(),
            w.fft_flops,
            w.ns_flops,
            w.transpose_bytes
        ));
        out.push_str(&format!(
            "measured: mean critical-path step {} -> {:.3} Gflop/s attained\n",
            fmt_seconds(mean_step),
            attained / 1e9
        ));
        // Fit the run's own calibration (dns-netmodel's measured-counts
        // layer): analytic workload counts over the recorded per-phase
        // seconds, one observation per flight-recorder file.
        let obs = Observation {
            ranks: pa * pb,
            threads: 1,
            counts: StepCounts::from_workload(&w),
            seconds: StepSeconds {
                transpose: self.transpose.mean(),
                fft: self.fft.mean(),
                ns_advance: self.ns.mean(),
            },
        };
        if let Some(cal) = Calibration::fit(std::slice::from_ref(&obs)) {
            out.push_str(&format!(
                "calibration fit: fft {:.3} Gflop/s, ns {:.3} Gflop/s, transpose {:.3} GB/s\n",
                cal.fft_flop_rate / 1e9,
                cal.ns_flop_rate / 1e9,
                cal.stream_bw / 1e9
            ));
            let predicted = cal.predict(&obs.counts).total();
            out.push_str(&format!(
                "phase-sum vs critical path: predicted {} per step, rel err {:.1}% (untimed work + waits)\n",
                fmt_seconds(predicted),
                rel_err(mean_step, predicted) * 100.0
            ));
        }
        out.push_str(&format!(
            "measured comm payload: {:.3e} bytes/step across all ranks\n",
            measured_bytes
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SentinelKind;

    fn synthetic_events() -> Vec<FlightEvent> {
        let mut ev = vec![FlightEvent::RunStart {
            attempt: 0,
            nx: 16,
            ny: 25,
            nz: 16,
            pa: 2,
            pb: 2,
            dt: 1e-3,
            steps: 4,
            resumed_from: 0,
        }];
        for step in 1..=4u64 {
            for rank in 0..4usize {
                // rank 3 is 4x busier than the others
                let busy = if rank == 3 { 0.040 } else { 0.010 };
                ev.push(FlightEvent::Step {
                    step,
                    rank,
                    wall_s: 0.042,
                    transpose_s: 0.004,
                    fft_s: 0.003,
                    ns_s: 0.002,
                    recv_wait_s: 0.042 - busy,
                    // ranks 0..3 hide half their exchange exposure, rank 3 none
                    overlap_s: if rank == 3 { 0.0 } else { 0.042 - busy },
                    busy_s: busy,
                    msgs: 12,
                    bytes: 4096,
                });
            }
        }
        ev.push(FlightEvent::Health(HealthEvent::Straggler {
            step: 3,
            rank: 3,
            ratio: 4.0,
            factor: 1.5,
            consecutive: 3,
        }));
        ev.push(FlightEvent::Health(HealthEvent::SentinelWarn {
            step: 4,
            sentinel: SentinelKind::Cfl,
            value: 1.1,
            limit: 1.0,
        }));
        ev.push(FlightEvent::Checkpoint {
            step: 3,
            attempt: 0,
        });
        ev.push(FlightEvent::Recovery {
            attempt: 0,
            kind: "converged".into(),
            detail: String::new(),
        });
        ev.push(FlightEvent::RunEnd {
            steps_run: 4,
            wall_s: 0.2,
        });
        ev
    }

    #[test]
    fn replay_aggregates_and_flags() {
        let r = Replay::new(synthetic_events());
        assert_eq!(r.flagged_stragglers(), vec![3]);
        assert_eq!(r.wall.count(), 16); // 4 steps x 4 ranks
        assert_eq!(r.step_critical.count(), 4);
        assert!(r.step_critical.quantile(0.5) > 0.0);
    }

    #[test]
    fn report_contains_every_section() {
        let text = Replay::new(synthetic_events()).render();
        for needle in [
            "grid 16x25x16 on 2x2 ranks",
            "step latency",
            "p99",
            "per-rank imbalance",
            "STRAGGLER rank 3",
            "WARN cfl",
            "checkpoint committed",
            "recovery converged",
            "measured vs dnscost model",
            "ovl 50.0%",
            "ovl  0.0%",
            "Gflop/s",
            "calibration fit",
            "phase-sum vs critical path",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // rank 3's heat row must show it well above the mean
        let row = text
            .lines()
            .find(|l| l.starts_with("rank   3"))
            .expect("rank 3 heat row");
        assert!(row.contains("x mean"), "{row}");
    }

    #[test]
    fn empty_timeline_renders_gracefully() {
        let text = Replay::new(Vec::new()).render();
        assert!(text.contains("no run_start event found"));
    }
}
