//! Incremental JSONL flight recorder with bounded buffering.
//!
//! The recorder appends one [`FlightEvent`] line at a time into an
//! in-memory buffer and writes the buffer through whenever it crosses
//! a byte bound (default 16 KiB), on [`FlightRecorder::flush`], and on
//! drop — so a crash loses at most the last unflushed window, never the
//! whole log. Checkpoint and recovery events force a flush immediately:
//! they are exactly the lines a post-mortem needs to be durable.

use crate::schema::FlightEvent;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Default buffered-bytes bound before a write-through.
pub const DEFAULT_FLUSH_BYTES: usize = 16 * 1024;

/// An append-only JSONL writer for [`FlightEvent`]s.
pub struct FlightRecorder {
    file: File,
    path: PathBuf,
    buf: String,
    flush_bytes: usize,
    lines: u64,
}

impl FlightRecorder {
    /// Start a fresh log at `path`, truncating any previous file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<FlightRecorder> {
        Self::open(path, false)
    }

    /// Continue an existing log (a restarted attempt appends to the
    /// first attempt's timeline rather than erasing it).
    pub fn append(path: impl AsRef<Path>) -> io::Result<FlightRecorder> {
        Self::open(path, true)
    }

    fn open(path: impl AsRef<Path>, append: bool) -> io::Result<FlightRecorder> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(append)
            .write(true)
            .truncate(!append)
            .open(&path)?;
        Ok(FlightRecorder {
            file,
            path,
            buf: String::new(),
            flush_bytes: DEFAULT_FLUSH_BYTES,
            lines: 0,
        })
    }

    /// Override the buffered-bytes bound (tests use tiny bounds to
    /// exercise incremental write-through).
    pub fn with_flush_bytes(mut self, bytes: usize) -> FlightRecorder {
        self.flush_bytes = bytes.max(1);
        self
    }

    /// Path the recorder writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines recorded (buffered or written) since opening.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Record one event. Durability-critical kinds (checkpoints and
    /// recovery markers) flush through immediately; everything else is
    /// buffered up to the byte bound.
    pub fn record(&mut self, event: &FlightEvent) -> io::Result<()> {
        self.buf.push_str(&event.to_json_line());
        self.buf.push('\n');
        self.lines += 1;
        let force = matches!(
            event,
            FlightEvent::Checkpoint { .. } | FlightEvent::Recovery { .. }
        );
        if force || self.buf.len() >= self.flush_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Write the buffer through to the file.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(self.buf.as_bytes())?;
            self.buf.clear();
        }
        self.file.flush()
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        // Best-effort: a panic unwinding through the run loop still
        // lands the buffered tail on disk.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::parse_jsonl;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("dns_health_{name}.jsonl"));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn step(step: u64) -> FlightEvent {
        FlightEvent::Step {
            step,
            rank: 0,
            wall_s: 0.01,
            transpose_s: 0.004,
            fft_s: 0.003,
            ns_s: 0.002,
            recv_wait_s: 0.001,
            overlap_s: 0.0005,
            busy_s: 0.009,
            msgs: 4,
            bytes: 1024,
        }
    }

    #[test]
    fn buffers_until_bound_then_writes_through() {
        let path = tmp("bound");
        let mut rec = FlightRecorder::create(&path).unwrap().with_flush_bytes(400);
        rec.record(&step(0)).unwrap();
        // one ~150-byte line: still buffered
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        for s in 1..4 {
            rec.record(&step(s)).unwrap();
        }
        // bound crossed: earlier lines are on disk without an explicit flush
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert!(!on_disk.is_empty(), "bound crossed but nothing written");
        drop(rec);
        let all = parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(all.len(), 4, "drop must flush the tail");
    }

    #[test]
    fn checkpoints_flush_immediately() {
        let path = tmp("ckpt");
        let mut rec = FlightRecorder::create(&path).unwrap();
        rec.record(&step(0)).unwrap();
        rec.record(&FlightEvent::Checkpoint {
            step: 0,
            attempt: 0,
        })
        .unwrap();
        // both the step and the checkpoint are durable before drop
        let events = parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1], FlightEvent::Checkpoint { .. }));
        drop(rec);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_mode_extends_the_timeline() {
        let path = tmp("append");
        {
            let mut rec = FlightRecorder::create(&path).unwrap();
            rec.record(&step(0)).unwrap();
        }
        {
            let mut rec = FlightRecorder::append(&path).unwrap();
            rec.record(&step(1)).unwrap();
            assert_eq!(rec.lines(), 1);
        }
        let events = parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(events.len(), 2);
        // create() truncates
        {
            let mut rec = FlightRecorder::create(&path).unwrap();
            rec.record(&step(2)).unwrap();
        }
        let events = parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(events.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
