//! Online cross-rank straggler detection.
//!
//! Fed one busy-seconds table per step (one entry per rank), the
//! detector flags any rank whose busy time exceeds the cross-rank
//! median by a configurable factor for K consecutive steps. Busy time
//! (step wall minus receive wait) is the right signal: a slow rank's
//! *victims* spend the excess blocked in receives, so their wall time
//! rises in lockstep with the culprit's — only the busy split tells
//! them apart.

use crate::schema::HealthEvent;

/// Detector thresholds.
#[derive(Clone, Copy, Debug)]
pub struct StragglerConfig {
    /// Flag a rank whose busy time exceeds `factor` x median.
    pub factor: f64,
    /// ... for this many consecutive steps.
    pub consecutive: u32,
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig {
            factor: 1.5,
            consecutive: 3,
        }
    }
}

/// Per-rank streak state over the run.
pub struct StragglerDetector {
    cfg: StragglerConfig,
    streaks: Vec<u32>,
    scratch: Vec<f64>,
}

impl StragglerDetector {
    pub fn new(cfg: StragglerConfig, ranks: usize) -> StragglerDetector {
        assert!(cfg.factor > 1.0, "a factor <= 1 flags the median itself");
        assert!(cfg.consecutive >= 1);
        StragglerDetector {
            cfg,
            streaks: vec![0; ranks],
            scratch: Vec::with_capacity(ranks),
        }
    }

    /// Feed one step's per-rank busy seconds; returns a straggler event
    /// for every rank whose over-threshold streak has reached the
    /// configured length (and keeps emitting while the streak lasts, so
    /// the timeline shows the whole episode).
    pub fn observe(&mut self, step: u64, busy: &[f64]) -> Vec<HealthEvent> {
        assert_eq!(busy.len(), self.streaks.len(), "rank count changed");
        let median = self.median(busy);
        let mut events = Vec::new();
        for (rank, (&b, streak)) in busy.iter().zip(self.streaks.iter_mut()).enumerate() {
            if median > 0.0 && b > self.cfg.factor * median {
                *streak += 1;
                if *streak >= self.cfg.consecutive {
                    events.push(HealthEvent::Straggler {
                        step,
                        rank,
                        ratio: b / median,
                        factor: self.cfg.factor,
                        consecutive: *streak,
                    });
                }
            } else {
                *streak = 0;
            }
        }
        events
    }

    fn median(&mut self, vals: &[f64]) -> f64 {
        self.scratch.clear();
        self.scratch.extend_from_slice(vals);
        self.scratch.sort_by(f64::total_cmp);
        let n = self.scratch.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            self.scratch[n / 2]
        } else {
            0.5 * (self.scratch[n / 2 - 1] + self.scratch[n / 2])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks_of(events: &[HealthEvent]) -> Vec<usize> {
        events
            .iter()
            .map(|e| match e {
                HealthEvent::Straggler { rank, .. } => *rank,
                other => panic!("unexpected event {other:?}"),
            })
            .collect()
    }

    #[test]
    fn flags_only_after_k_consecutive_steps() {
        let mut d = StragglerDetector::new(
            StragglerConfig {
                factor: 1.5,
                consecutive: 3,
            },
            4,
        );
        let slow = [10.0, 1.0, 1.0, 1.0];
        assert!(d.observe(1, &slow).is_empty());
        assert!(d.observe(2, &slow).is_empty());
        let flagged = d.observe(3, &slow);
        assert_eq!(ranks_of(&flagged), vec![0]);
        match &flagged[0] {
            HealthEvent::Straggler {
                step,
                ratio,
                consecutive,
                ..
            } => {
                assert_eq!(*step, 3);
                assert_eq!(*consecutive, 3);
                assert!((ratio - 10.0).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
        // the episode keeps reporting while it lasts
        assert_eq!(ranks_of(&d.observe(4, &slow)), vec![0]);
    }

    #[test]
    fn recovery_resets_the_streak() {
        let mut d = StragglerDetector::new(
            StragglerConfig {
                factor: 1.5,
                consecutive: 2,
            },
            3,
        );
        let slow = [5.0, 1.0, 1.0];
        let even = [1.0, 1.0, 1.0];
        assert!(d.observe(1, &slow).is_empty());
        assert!(d.observe(2, &even).is_empty()); // streak broken
        assert!(d.observe(3, &slow).is_empty()); // back to 1
        assert_eq!(ranks_of(&d.observe(4, &slow)), vec![0]);
    }

    #[test]
    fn balanced_ranks_never_flag() {
        let mut d = StragglerDetector::new(StragglerConfig::default(), 4);
        for step in 0..100 {
            // 20% jitter stays well under the 1.5x factor
            let base = 1.0 + 0.2 * ((step % 4) as f64 / 4.0);
            let busy = [base, base * 1.1, base * 0.95, base * 1.05];
            assert!(d.observe(step, &busy).is_empty(), "step {step}");
        }
    }

    #[test]
    fn zero_median_is_inert() {
        // degenerate all-idle table (e.g. a warmup step) must not flag
        let mut d = StragglerDetector::new(StragglerConfig::default(), 2);
        for step in 0..5 {
            assert!(d.observe(step, &[0.0, 0.0]).is_empty());
        }
    }

    #[test]
    fn even_rank_count_uses_midpoint_median() {
        let mut d = StragglerDetector::new(
            StragglerConfig {
                factor: 2.0,
                consecutive: 1,
            },
            4,
        );
        // sorted: [1, 1, 3, 9]; median = 2; only 9 > 2*2
        let flagged = d.observe(1, &[3.0, 1.0, 9.0, 1.0]);
        assert_eq!(ranks_of(&flagged), vec![2]);
    }
}
