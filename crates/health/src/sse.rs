//! Server-Sent Events framing for health JSONL streams.
//!
//! The campaign server's observability facade streams a run's flight
//! record (`health.jsonl`) to browsers over
//! `GET /api/v1/jobs/{id}/health` as `text/event-stream`. SSE framing
//! has two hazards for JSONL payloads: a payload line may never contain
//! a raw newline (it would terminate the event early), and carriage
//! returns also act as line terminators in the SSE parser. These helpers
//! make any text — including a multi-line chunk of JSONL — safe by
//! emitting one `data:` line per payload line and stripping `\r`.
//!
//! Framing reference: WHATWG HTML "Server-sent events" — an event is a
//! block of `field: value` lines terminated by a blank line; consecutive
//! `data:` lines concatenate with `\n` on the client.

/// Frame one payload as an SSE `data:` event block (terminated by the
/// required blank line). Every line of the payload becomes its own
/// `data:` line; carriage returns are stripped. An empty payload still
/// produces a valid single-line event.
pub fn sse_data(payload: &str) -> String {
    let cleaned: String = payload.chars().filter(|&c| c != '\r').collect();
    // one trailing newline is a line *terminator* (JSONL convention),
    // not an extra empty line
    let body = cleaned.strip_suffix('\n').unwrap_or(&cleaned);
    let mut out = String::with_capacity(body.len() + 16);
    for line in body.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Frame a payload under a named event type (`event: name` line first),
/// e.g. `sse_event("done", "{\"state\":\"done\"}")` so browser clients
/// can `addEventListener("done", …)`.
pub fn sse_event(name: &str, payload: &str) -> String {
    let clean_name: String = name.chars().filter(|c| !matches!(c, '\n' | '\r')).collect();
    format!("event: {clean_name}\n{}", sse_data(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_event() {
        assert_eq!(sse_data("{\"a\":1}"), "data: {\"a\":1}\n\n");
    }

    #[test]
    fn multiline_payload_splits_into_data_lines() {
        let framed = sse_data("{\"a\":1}\n{\"b\":2}");
        assert_eq!(framed, "data: {\"a\":1}\ndata: {\"b\":2}\n\n");
    }

    #[test]
    fn trailing_newline_does_not_add_empty_data_line() {
        let framed = sse_data("{\"a\":1}\n");
        assert_eq!(framed, "data: {\"a\":1}\n\n");
    }

    #[test]
    fn carriage_returns_stripped() {
        let framed = sse_data("{\"a\":1}\r\n{\"b\":2}\r");
        assert_eq!(framed, "data: {\"a\":1}\ndata: {\"b\":2}\n\n");
    }

    #[test]
    fn empty_payload_is_still_an_event() {
        assert_eq!(sse_data(""), "data: \n\n");
    }

    #[test]
    fn named_events() {
        let framed = sse_event("done", "{\"state\":\"done\"}");
        assert_eq!(framed, "event: done\ndata: {\"state\":\"done\"}\n\n");
        // newline smuggling in the event name is neutralised
        assert_eq!(sse_event("a\nb", "x"), "event: ab\ndata: x\n\n");
    }

    #[test]
    fn jsonl_block_replays_cleanly() {
        // what the facade actually does: frame a freshly appended chunk
        // of health JSONL (complete lines, trailing newline)
        let chunk = "{\"step\":1}\n{\"step\":2}\n{\"step\":3}\n";
        let framed = sse_data(chunk);
        let datas: Vec<&str> = framed
            .lines()
            .filter_map(|l| l.strip_prefix("data: "))
            .collect();
        assert_eq!(datas, ["{\"step\":1}", "{\"step\":2}", "{\"step\":3}"]);
        assert!(framed.ends_with("\n\n"));
    }
}
