//! A minimal JSON reader for flight-recorder replay.
//!
//! The workspace vendors no serde, and the writer side
//! ([`crate::schema`]) hand-rolls its output like the rest of the stack;
//! this is the matching reader: a small recursive-descent parser into a
//! dynamic [`Json`] value, enough to replay one JSONL line per call.
//! Numbers are parsed as `f64` (every value the recorder emits fits in
//! the 2^53 exact-integer range).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Field lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn eat_word(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_word("true", Json::Bool(true)),
            Some(b'f') => self.eat_word("false", Json::Bool(false)),
            Some(b'n') => self.eat_word("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the
                            // recorder's ASCII-escaped output; reject
                            // rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape outside the BMP"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"k": [1, 2, {"x": "y"}], "n": null}"#).unwrap();
        assert_eq!(v.get("n"), Some(&Json::Null));
        match v.get("k") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0].as_u64(), Some(1));
                assert_eq!(items[2].get("x").and_then(Json::as_str), Some("y"));
            }
            other => panic!("bad array: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "12 34",
            "tru",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_escapes() {
        let v = parse(r#""quote \" slash \\ tab \t unicode A""#).unwrap();
        assert_eq!(v.as_str(), Some("quote \" slash \\ tab \t unicode A"));
    }

    #[test]
    fn integers_are_exact() {
        let v = parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(9007199254740992));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
