//! JSON reading for flight-recorder replay — re-exported from the shared
//! [`dns_json`] crate.
//!
//! The recursive-descent parser that used to live here was promoted to
//! `dns-json` (unchanged) when the campaign server needed the same
//! reader plus a serializer; this module remains so existing
//! `dns_health::json::{parse, Json}` call sites keep working. The writer
//! side of *this* crate ([`crate::schema`]) still hand-rolls its output
//! directly — its golden JSONL bytes predate the shared serializer and
//! must not drift.

pub use dns_json::{parse, Json, JsonError};
