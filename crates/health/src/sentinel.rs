//! Physics sentinels: online checks that a run is still computing flow.
//!
//! A diverging DNS does not crash — it happily integrates garbage to
//! walltime. The sentinels watch the four cheapest global invariants
//! (CFL number, maximum divergence, total kinetic energy, finiteness)
//! and split each into a *warn* threshold (recorded as a typed health
//! event) and an *abort* threshold (a typed [`SentinelAbort`] error the
//! run loop propagates, so the job fails in seconds instead of hours).

use crate::schema::{HealthEvent, SentinelAbort, SentinelKind};

/// Warn/abort thresholds for every sentinel.
#[derive(Clone, Copy, Debug)]
pub struct SentinelConfig {
    /// CFL warn threshold; RK3's stability limit is near sqrt(3) ~ 1.73,
    /// so warning at 1.0 leaves margin to react.
    pub cfl_warn: f64,
    /// CFL abort threshold.
    pub cfl_abort: f64,
    /// Max-divergence warn threshold (the projection method holds it
    /// near machine epsilon; drift means the solver is broken).
    pub div_warn: f64,
    /// Max-divergence abort threshold.
    pub div_abort: f64,
    /// Abort when total energy exceeds this multiple of the first
    /// observed energy (a forced channel's energy is O(initial)).
    pub energy_growth_abort: f64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            cfl_warn: 1.0,
            cfl_abort: 1.7,
            div_warn: 1e-6,
            div_abort: 1e-2,
            energy_growth_abort: 1e3,
        }
    }
}

/// One step's collective readings (identical on every rank: each value
/// comes out of an all-reduction).
#[derive(Clone, Copy, Debug)]
pub struct SentinelValues {
    pub cfl: f64,
    pub max_div: f64,
    pub energy: f64,
    /// Whether every field value on every rank is finite.
    pub finite: bool,
}

/// Stateful checker (remembers the energy baseline).
pub struct Sentinels {
    cfg: SentinelConfig,
    energy0: Option<f64>,
}

impl Sentinels {
    pub fn new(cfg: SentinelConfig) -> Sentinels {
        Sentinels { cfg, energy0: None }
    }

    /// Check one step's readings. Returns warn events on success; a
    /// typed abort error when any abort threshold is crossed. Because
    /// the inputs are collective values, every rank returns the same
    /// verdict — an abort is globally simultaneous, never a one-rank
    /// hang.
    pub fn check(
        &mut self,
        step: u64,
        v: &SentinelValues,
    ) -> Result<Vec<HealthEvent>, SentinelAbort> {
        // NaN/Inf first: every other reading is meaningless once the
        // fields are contaminated.
        if !v.finite || !v.cfl.is_finite() || !v.energy.is_finite() {
            return Err(SentinelAbort {
                step,
                sentinel: SentinelKind::Finite,
                value: f64::NAN,
                limit: 0.0,
            });
        }
        if v.cfl >= self.cfg.cfl_abort {
            return Err(SentinelAbort {
                step,
                sentinel: SentinelKind::Cfl,
                value: v.cfl,
                limit: self.cfg.cfl_abort,
            });
        }
        if v.max_div >= self.cfg.div_abort {
            return Err(SentinelAbort {
                step,
                sentinel: SentinelKind::Divergence,
                value: v.max_div,
                limit: self.cfg.div_abort,
            });
        }
        let e0 = *self.energy0.get_or_insert(v.energy);
        let energy_limit = self.cfg.energy_growth_abort * e0.max(f64::MIN_POSITIVE);
        if e0 > 0.0 && v.energy >= energy_limit {
            return Err(SentinelAbort {
                step,
                sentinel: SentinelKind::Energy,
                value: v.energy,
                limit: energy_limit,
            });
        }
        let mut warns = Vec::new();
        if v.cfl >= self.cfg.cfl_warn {
            warns.push(HealthEvent::SentinelWarn {
                step,
                sentinel: SentinelKind::Cfl,
                value: v.cfl,
                limit: self.cfg.cfl_warn,
            });
        }
        if v.max_div >= self.cfg.div_warn {
            warns.push(HealthEvent::SentinelWarn {
                step,
                sentinel: SentinelKind::Divergence,
                value: v.max_div,
                limit: self.cfg.div_warn,
            });
        }
        Ok(warns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> SentinelValues {
        SentinelValues {
            cfl: 0.4,
            max_div: 1e-12,
            energy: 0.33,
            finite: true,
        }
    }

    #[test]
    fn healthy_steps_raise_nothing() {
        let mut s = Sentinels::new(SentinelConfig::default());
        for step in 0..10 {
            assert!(s.check(step, &healthy()).unwrap().is_empty());
        }
    }

    #[test]
    fn cfl_warns_then_aborts() {
        let mut s = Sentinels::new(SentinelConfig::default());
        let warned = s
            .check(
                3,
                &SentinelValues {
                    cfl: 1.2,
                    ..healthy()
                },
            )
            .unwrap();
        assert!(matches!(
            warned[0],
            HealthEvent::SentinelWarn {
                sentinel: SentinelKind::Cfl,
                ..
            }
        ));
        let abort = s
            .check(
                4,
                &SentinelValues {
                    cfl: 2.0,
                    ..healthy()
                },
            )
            .unwrap_err();
        assert_eq!(abort.sentinel, SentinelKind::Cfl);
        assert_eq!(abort.step, 4);
        assert_eq!(abort.value, 2.0);
    }

    #[test]
    fn divergence_drift_is_caught() {
        let mut s = Sentinels::new(SentinelConfig::default());
        let warned = s
            .check(
                1,
                &SentinelValues {
                    max_div: 1e-5,
                    ..healthy()
                },
            )
            .unwrap();
        assert_eq!(warned.len(), 1);
        let abort = s
            .check(
                2,
                &SentinelValues {
                    max_div: 0.5,
                    ..healthy()
                },
            )
            .unwrap_err();
        assert_eq!(abort.sentinel, SentinelKind::Divergence);
    }

    #[test]
    fn energy_growth_uses_the_first_step_as_baseline() {
        let mut s = Sentinels::new(SentinelConfig::default());
        s.check(0, &healthy()).unwrap(); // baseline 0.33
                                         // 100x growth: still under the 1000x abort factor
        assert!(s
            .check(
                1,
                &SentinelValues {
                    energy: 33.0,
                    ..healthy()
                }
            )
            .is_ok());
        let abort = s
            .check(
                2,
                &SentinelValues {
                    energy: 400.0,
                    ..healthy()
                },
            )
            .unwrap_err();
        assert_eq!(abort.sentinel, SentinelKind::Energy);
    }

    #[test]
    fn nonfinite_aborts_before_anything_else() {
        let mut s = Sentinels::new(SentinelConfig::default());
        let abort = s
            .check(
                5,
                &SentinelValues {
                    finite: false,
                    cfl: f64::NAN,
                    ..healthy()
                },
            )
            .unwrap_err();
        assert_eq!(abort.sentinel, SentinelKind::Finite);
    }
}
