//! The versioned flight-recorder event schema.
//!
//! One JSON object per line (JSONL). Every line carries
//! `"schema": 1` and a `"kind"` discriminator; per-kind fields are
//! inlined flat, mirroring the recovery-log convention in
//! `dns-resilience`. The golden-file test pins the byte-level format;
//! [`FlightEvent::parse_line`] is the exact inverse of
//! [`FlightEvent::to_json_line`], so a recorder file replays into the
//! same typed timeline that produced it.

use crate::json::{parse, Json};
use std::fmt;

/// Schema version stamped on every line. Bump on any incompatible field
/// change and teach [`FlightEvent::parse_line`] the old versions.
///
/// v2 added `overlap_s` to `step` (seconds of communication hidden
/// behind computation by the pipelined transposes); v1 lines parse with
/// `overlap_s = 0.0` — a v1 recorder predates the overlap clock, so
/// zero is the faithful reading, not a guess.
pub const SCHEMA_VERSION: u64 = 2;

/// Which physics quantity a sentinel event is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SentinelKind {
    /// Convective CFL number (stability demands < ~sqrt(3) for RK3).
    Cfl,
    /// Maximum pointwise velocity divergence.
    Divergence,
    /// Total kinetic energy (blowup proxy).
    Energy,
    /// NaN/Inf contamination scan.
    Finite,
}

impl SentinelKind {
    pub fn label(self) -> &'static str {
        match self {
            SentinelKind::Cfl => "cfl",
            SentinelKind::Divergence => "divergence",
            SentinelKind::Energy => "energy",
            SentinelKind::Finite => "finite",
        }
    }

    fn from_label(s: &str) -> Option<SentinelKind> {
        Some(match s {
            "cfl" => SentinelKind::Cfl,
            "divergence" => SentinelKind::Divergence,
            "energy" => SentinelKind::Energy,
            "finite" => SentinelKind::Finite,
            _ => return None,
        })
    }
}

/// A typed health event raised by the online monitors.
#[derive(Clone, Debug, PartialEq)]
pub enum HealthEvent {
    /// A rank's busy time exceeded `factor` x the cross-rank median for
    /// `consecutive` steps running.
    Straggler {
        step: u64,
        rank: usize,
        /// Observed busy time / median busy time at this step.
        ratio: f64,
        /// Configured flagging factor.
        factor: f64,
        /// Length of the over-threshold streak ending at this step.
        consecutive: u32,
    },
    /// A physics sentinel crossed its warn threshold.
    SentinelWarn {
        step: u64,
        sentinel: SentinelKind,
        value: f64,
        limit: f64,
    },
}

/// Typed error aborting a run that crossed a sentinel's abort threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct SentinelAbort {
    pub step: u64,
    pub sentinel: SentinelKind,
    pub value: f64,
    pub limit: f64,
}

impl fmt::Display for SentinelAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "physics sentinel abort at step {}: {} = {:.6e} crossed the abort threshold {:.6e}",
            self.step,
            self.sentinel.label(),
            self.value,
            self.limit
        )
    }
}

impl std::error::Error for SentinelAbort {}

/// One flight-recorder line.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightEvent {
    /// Start of one supervised attempt.
    RunStart {
        attempt: usize,
        nx: usize,
        ny: usize,
        nz: usize,
        pa: usize,
        pb: usize,
        dt: f64,
        steps: u64,
        /// Step count restored from a checkpoint (0 on a fresh start).
        resumed_from: u64,
    },
    /// One rank's view of one timestep.
    Step {
        step: u64,
        rank: usize,
        /// Wall-clock step duration on this rank.
        wall_s: f64,
        transpose_s: f64,
        fft_s: f64,
        ns_s: f64,
        /// Seconds blocked in receives during the step.
        recv_wait_s: f64,
        /// Seconds of communication hidden behind computation during the
        /// step (the in-flight transpose overlap clock; 0.0 under
        /// blocking transposes and in schema-v1 recordings).
        overlap_s: f64,
        /// `wall_s - recv_wait_s`: the straggler-detection signal.
        busy_s: f64,
        /// Messages sent on the pencil communicators during the step.
        msgs: u64,
        /// Payload bytes sent on the pencil communicators.
        bytes: u64,
    },
    /// Collective physics-sentinel readings at one step.
    Sentinel {
        step: u64,
        cfl: f64,
        max_div: f64,
        energy: f64,
        finite: bool,
    },
    /// A typed health event (straggler flag or sentinel warning).
    Health(HealthEvent),
    /// A checkpoint was committed at this step.
    Checkpoint { step: u64, attempt: usize },
    /// A supervisor recovery event, folded in from
    /// `dns-resilience::RecoveryEvent`.
    Recovery {
        attempt: usize,
        /// The recovery-log kind label (`attempt_started`,
        /// `world_failed`, `restart_issued`, `converged`, `gave_up`).
        kind: String,
        /// Human-readable detail (starting state, failure messages).
        detail: String,
    },
    /// Clean end of an attempt.
    RunEnd { steps_run: u64, wall_s: f64 },
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 so that parsing it back yields the same value, without
/// scientific-notation churn for the common magnitudes.
fn num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        // shortest representation that round-trips
        format!("{x}")
    }
}

impl FlightEvent {
    /// Serialise to one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let body = match self {
            FlightEvent::RunStart {
                attempt,
                nx,
                ny,
                nz,
                pa,
                pb,
                dt,
                steps,
                resumed_from,
            } => format!(
                "\"kind\":\"run_start\",\"attempt\":{attempt},\"nx\":{nx},\"ny\":{ny},\
                 \"nz\":{nz},\"pa\":{pa},\"pb\":{pb},\"dt\":{},\"steps\":{steps},\
                 \"resumed_from\":{resumed_from}",
                num(*dt)
            ),
            FlightEvent::Step {
                step,
                rank,
                wall_s,
                transpose_s,
                fft_s,
                ns_s,
                recv_wait_s,
                overlap_s,
                busy_s,
                msgs,
                bytes,
            } => format!(
                "\"kind\":\"step\",\"step\":{step},\"rank\":{rank},\"wall_s\":{},\
                 \"transpose_s\":{},\"fft_s\":{},\"ns_s\":{},\"recv_wait_s\":{},\
                 \"overlap_s\":{},\"busy_s\":{},\"msgs\":{msgs},\"bytes\":{bytes}",
                num(*wall_s),
                num(*transpose_s),
                num(*fft_s),
                num(*ns_s),
                num(*recv_wait_s),
                num(*overlap_s),
                num(*busy_s),
            ),
            FlightEvent::Sentinel {
                step,
                cfl,
                max_div,
                energy,
                finite,
            } => format!(
                "\"kind\":\"sentinel\",\"step\":{step},\"cfl\":{},\"max_div\":{},\
                 \"energy\":{},\"finite\":{finite}",
                num(*cfl),
                num(*max_div),
                num(*energy),
            ),
            FlightEvent::Health(HealthEvent::Straggler {
                step,
                rank,
                ratio,
                factor,
                consecutive,
            }) => format!(
                "\"kind\":\"health\",\"event\":\"straggler\",\"step\":{step},\"rank\":{rank},\
                 \"ratio\":{},\"factor\":{},\"consecutive\":{consecutive}",
                num(*ratio),
                num(*factor),
            ),
            FlightEvent::Health(HealthEvent::SentinelWarn {
                step,
                sentinel,
                value,
                limit,
            }) => format!(
                "\"kind\":\"health\",\"event\":\"sentinel_warn\",\"step\":{step},\
                 \"sentinel\":\"{}\",\"value\":{},\"limit\":{}",
                sentinel.label(),
                num(*value),
                num(*limit),
            ),
            FlightEvent::Checkpoint { step, attempt } => {
                format!("\"kind\":\"checkpoint\",\"step\":{step},\"attempt\":{attempt}")
            }
            FlightEvent::Recovery {
                attempt,
                kind,
                detail,
            } => format!(
                "\"kind\":\"recovery\",\"attempt\":{attempt},\"event\":\"{}\",\"detail\":\"{}\"",
                esc(kind),
                esc(detail)
            ),
            FlightEvent::RunEnd { steps_run, wall_s } => format!(
                "\"kind\":\"run_end\",\"steps_run\":{steps_run},\"wall_s\":{}",
                num(*wall_s)
            ),
        };
        format!("{{\"schema\":{SCHEMA_VERSION},{body}}}")
    }

    /// Parse one JSONL line back into a typed event.
    pub fn parse_line(line: &str) -> Result<FlightEvent, String> {
        let v = parse(line).map_err(|e| e.to_string())?;
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("missing schema field")?;
        // v1 is read back-compatibly (its `step` lines simply predate
        // `overlap_s`); anything newer than this build is refused
        if schema == 0 || schema > SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {schema} (expected <= {SCHEMA_VERSION})"
            ));
        }
        let kind = v.get("kind").and_then(Json::as_str).ok_or("missing kind")?;
        let f = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number field {k:?} in {kind}"))
        };
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {k:?} in {kind}"))
        };
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {k:?} in {kind}"))
        };
        Ok(match kind {
            "run_start" => FlightEvent::RunStart {
                attempt: u("attempt")? as usize,
                nx: u("nx")? as usize,
                ny: u("ny")? as usize,
                nz: u("nz")? as usize,
                pa: u("pa")? as usize,
                pb: u("pb")? as usize,
                dt: f("dt")?,
                steps: u("steps")?,
                resumed_from: u("resumed_from")?,
            },
            "step" => FlightEvent::Step {
                step: u("step")?,
                rank: u("rank")? as usize,
                wall_s: f("wall_s")?,
                transpose_s: f("transpose_s")?,
                fft_s: f("fft_s")?,
                ns_s: f("ns_s")?,
                recv_wait_s: f("recv_wait_s")?,
                // absent in v1 recordings: those predate the overlap
                // clock, so zero is the faithful reading
                overlap_s: if schema >= 2 { f("overlap_s")? } else { 0.0 },
                busy_s: f("busy_s")?,
                msgs: u("msgs")?,
                bytes: u("bytes")?,
            },
            "sentinel" => FlightEvent::Sentinel {
                step: u("step")?,
                cfl: f("cfl")?,
                max_div: f("max_div")?,
                energy: f("energy")?,
                finite: v
                    .get("finite")
                    .and_then(Json::as_bool)
                    .ok_or("missing bool field \"finite\" in sentinel")?,
            },
            "health" => match s("event")?.as_str() {
                "straggler" => FlightEvent::Health(HealthEvent::Straggler {
                    step: u("step")?,
                    rank: u("rank")? as usize,
                    ratio: f("ratio")?,
                    factor: f("factor")?,
                    consecutive: u("consecutive")? as u32,
                }),
                "sentinel_warn" => FlightEvent::Health(HealthEvent::SentinelWarn {
                    step: u("step")?,
                    sentinel: SentinelKind::from_label(&s("sentinel")?)
                        .ok_or("unknown sentinel label")?,
                    value: f("value")?,
                    limit: f("limit")?,
                }),
                other => return Err(format!("unknown health event {other:?}")),
            },
            "checkpoint" => FlightEvent::Checkpoint {
                step: u("step")?,
                attempt: u("attempt")? as usize,
            },
            "recovery" => FlightEvent::Recovery {
                attempt: u("attempt")? as usize,
                kind: s("event")?,
                detail: s("detail")?,
            },
            "run_end" => FlightEvent::RunEnd {
                steps_run: u("steps_run")?,
                wall_s: f("wall_s")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }
}

/// Parse a whole flight-recorder file; blank lines are skipped, any
/// malformed line fails with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<FlightEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(FlightEvent::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<FlightEvent> {
        vec![
            FlightEvent::RunStart {
                attempt: 0,
                nx: 16,
                ny: 25,
                nz: 16,
                pa: 2,
                pb: 2,
                dt: 1e-3,
                steps: 10,
                resumed_from: 0,
            },
            FlightEvent::Step {
                step: 1,
                rank: 2,
                wall_s: 0.0123,
                transpose_s: 0.004,
                fft_s: 0.003,
                ns_s: 0.002,
                recv_wait_s: 0.001,
                overlap_s: 0.0005,
                busy_s: 0.0113,
                msgs: 48,
                bytes: 65536,
            },
            FlightEvent::Sentinel {
                step: 1,
                cfl: 0.42,
                max_div: 1.5e-12,
                energy: 0.3333,
                finite: true,
            },
            FlightEvent::Health(HealthEvent::Straggler {
                step: 5,
                rank: 2,
                ratio: 3.7,
                factor: 1.5,
                consecutive: 3,
            }),
            FlightEvent::Health(HealthEvent::SentinelWarn {
                step: 6,
                sentinel: SentinelKind::Cfl,
                value: 1.12,
                limit: 1.0,
            }),
            FlightEvent::Checkpoint {
                step: 3,
                attempt: 0,
            },
            FlightEvent::Recovery {
                attempt: 0,
                kind: "world_failed".into(),
                detail: "rank 0: injected fault \"crash\"".into(),
            },
            FlightEvent::RunEnd {
                steps_run: 10,
                wall_s: 1.25,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for ev in samples() {
            let line = ev.to_json_line();
            assert!(line.contains("\"schema\":2"), "{line}");
            let back = FlightEvent::parse_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert_eq!(back, ev, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn v1_step_lines_parse_with_zero_overlap() {
        // a line exactly as a schema-1 recorder wrote it: no overlap_s
        let line = "{\"schema\":1,\"kind\":\"step\",\"step\":1,\"rank\":2,\"wall_s\":0.0123,\
                    \"transpose_s\":0.004,\"fft_s\":0.003,\"ns_s\":0.002,\"recv_wait_s\":0.001,\
                    \"busy_s\":0.0113,\"msgs\":48,\"bytes\":65536}";
        match FlightEvent::parse_line(line).unwrap() {
            FlightEvent::Step {
                overlap_s, busy_s, ..
            } => {
                assert_eq!(overlap_s, 0.0);
                assert_eq!(busy_s, 0.0113);
            }
            other => panic!("parsed wrong kind: {other:?}"),
        }
    }

    #[test]
    fn jsonl_parses_with_line_numbers_on_error() {
        let good: String = samples().iter().map(|e| e.to_json_line() + "\n").collect();
        let events = parse_jsonl(&good).unwrap();
        assert_eq!(events.len(), samples().len());
        let bad = format!("{good}{{\"schema\":1,\"kind\":\"nope\"}}\n");
        let err = parse_jsonl(&bad).unwrap_err();
        assert!(err.starts_with("line 9:"), "{err}");
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let err = FlightEvent::parse_line(
            "{\"schema\":3,\"kind\":\"run_end\",\"steps_run\":1,\"wall_s\":0.5}",
        )
        .unwrap_err();
        assert!(err.contains("unsupported schema version 3"), "{err}");
    }

    #[test]
    fn sentinel_abort_displays_typed_context() {
        let e = SentinelAbort {
            step: 7,
            sentinel: SentinelKind::Divergence,
            value: 2e-2,
            limit: 1e-3,
        };
        let msg = e.to_string();
        assert!(msg.contains("step 7"));
        assert!(msg.contains("divergence"));
        assert!(msg.contains("abort threshold"));
    }
}
