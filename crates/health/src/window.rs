//! Reporting-window arithmetic for `--metrics-every`-style periodic
//! reports, extracted from `dns-run` so the edge cases are tested once
//! instead of re-derived inline at each call site.

/// Inclusive range of steps covered by a periodic report due after
/// completing `step`, for a cadence of `every` steps, in a run segment
/// that resumed from `first_step` (0 for a fresh start).
///
/// Returns `None` when no report is due: a zero cadence, step 0 (no
/// step has completed), a step at or before the resume point, or a step
/// off the cadence. On a resumed run the first window is clipped at the
/// resume point — a run restored from step 10 reporting at step 12 with
/// `every = 4` covers steps 11..=12, not the 9..=12 the naive
/// `step - every + 1` arithmetic claims (steps 9 and 10 ran in a
/// previous attempt, or never ran in this process at all).
pub fn metrics_window(step: u64, every: u64, first_step: u64) -> Option<(u64, u64)> {
    if every == 0 || step == 0 || step <= first_step || !step.is_multiple_of(every) {
        return None;
    }
    let start = (step + 1).saturating_sub(every).max(first_step + 1);
    Some((start, step))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_run_windows_tile_the_step_range() {
        assert_eq!(metrics_window(1, 4, 0), None);
        assert_eq!(metrics_window(3, 4, 0), None);
        assert_eq!(metrics_window(4, 4, 0), Some((1, 4)));
        assert_eq!(metrics_window(8, 4, 0), Some((5, 8)));
        assert_eq!(metrics_window(12, 4, 0), Some((9, 12)));
    }

    #[test]
    fn every_step_cadence_is_a_single_step_window() {
        for s in 1..6 {
            assert_eq!(metrics_window(s, 1, 0), Some((s, s)));
        }
    }

    #[test]
    fn step_zero_and_zero_cadence_never_report() {
        assert_eq!(metrics_window(0, 4, 0), None);
        assert_eq!(metrics_window(0, 1, 0), None);
        assert_eq!(metrics_window(8, 0, 0), None);
    }

    #[test]
    fn resumed_run_clips_the_first_window_at_the_resume_point() {
        // restored from step 10, cadence 4: the report at step 12 covers
        // only the two steps this attempt actually ran
        assert_eq!(metrics_window(12, 4, 10), Some((11, 12)));
        // later windows are full-width again
        assert_eq!(metrics_window(16, 4, 10), Some((13, 16)));
        // a report due exactly at the resume point has nothing to say
        assert_eq!(metrics_window(8, 4, 10), None);
        assert_eq!(metrics_window(10, 5, 10), None);
    }

    #[test]
    fn cadence_wider_than_the_run_does_not_underflow() {
        assert_eq!(metrics_window(100, 100, 0), Some((1, 100)));
        assert_eq!(metrics_window(100, 100, 98), Some((99, 100)));
    }
}
