//! Replay a flight-recorder JSONL file into a human run report.
//!
//! ```text
//! dns-report RUN.health.jsonl            render the full report
//! dns-report --check RUN.health.jsonl    validate only: every line must
//!                                        parse against the schema
//! ```
//!
//! Exit codes: 0 ok, 1 usage error, 2 unreadable or malformed input.

use dns_health::report::Replay;
use dns_health::schema::parse_jsonl;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: dns-report [--check] FILE.jsonl");
    eprintln!("  --check   validate every JSONL line against the schema and exit");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut check = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                println!("dns-report: render a dns-health flight-recorder file");
                return usage();
            }
            other if other.starts_with('-') => {
                eprintln!("dns-report: unknown flag {other:?}");
                return usage();
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    eprintln!("dns-report: more than one input file");
                    return usage();
                }
            }
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dns-report: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let events = match parse_jsonl(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("dns-report: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if check {
        println!(
            "{path}: {} event(s) ok (schema {})",
            events.len(),
            dns_health::SCHEMA_VERSION
        );
        return ExitCode::SUCCESS;
    }
    print!("{}", Replay::new(events).render());
    ExitCode::SUCCESS
}
