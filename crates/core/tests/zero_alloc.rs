//! Pins the headline property of the fused pipeline: once the grow-only
//! workspaces are warm, a full RK3 step on a single rank with serial
//! transforms performs **zero** heap allocations.
//!
//! The counting allocator is thread-local and armed only around the
//! measured step, so the test is immune to allocation traffic from other
//! test threads and from the rank-spawning harness itself. The guarantee
//! intentionally excludes multi-rank runs (`alltoallv` staging) and the
//! threaded pool (scoped-thread spawns) — see DESIGN.md section 4.1.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // const-init Cells: reading them from inside `alloc` cannot itself
    // trigger lazy TLS initialisation (which may allocate)
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.with(|a| a.get()) {
            ALLOCS.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_rk3_step_performs_zero_heap_allocations() {
    // the run-health hook is compiled into `ChannelDns::step` but must be
    // off here: disabled, its entire cost is one relaxed atomic load, so
    // the zero-allocation guarantee holds with monitoring built in
    assert!(!dns_health::enabled());
    // pin the *batched* implicit path explicitly: the multi-RHS panels in
    // StepScratch are grow-only, so they must not allocate once warm.
    // `with_pipeline(4)` pins that requesting transpose overlap keeps the
    // guarantee: a single-rank CommA group has no exchange to hide, so
    // the solver must stay on the monolithic zero-allocation route
    // rather than entering the (allocating) pipelined schedule
    let params = dns_core::Params::channel(16, 25, 16, 100.0)
        .with_batched(true)
        .with_pipeline(4);
    let allocs = dns_core::run_serial(params, |dns| {
        dns.set_laminar(1.0);
        dns.add_perturbation(0.3, 17);
        // two warmup steps size every grow-only buffer (workspaces,
        // batch plans, transpose staging) to steady state
        for _ in 0..2 {
            dns.step();
        }
        ARMED.with(|a| a.set(true));
        dns.step();
        ARMED.with(|a| a.set(false));
        ALLOCS.with(|c| c.get())
    });
    assert_eq!(
        allocs, 0,
        "steady-state RK3 step made {allocs} heap allocations"
    );
}
