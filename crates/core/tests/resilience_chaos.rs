//! Resilience integration tests: bitwise-exact checkpoint restart and a
//! seeded chaos matrix driving the supervisor over a 2x2 process grid.
//!
//! "Bitwise" is meant literally — the restarted trajectory must produce
//! the *same f64 bit patterns* as the uninterrupted one, because any
//! drift at restart compounds over the hundreds of thousands of steps a
//! production campaign takes (and makes recovered runs scientifically
//! unreproducible).

use std::path::PathBuf;
use std::time::Duration;

use dns_core::solver::ChannelDns;
use dns_core::{checkpoint, run_parallel, Forcing, Params};
use dns_minimpi::FaultPlan;
use dns_resilience::{supervise, EventKind, SupervisorConfig};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Flux-driven parameters: exercises the mass-flux controller whose
/// internal state must survive the restart for bitwise equality.
fn chaos_params() -> Params {
    let mut p = Params::channel(16, 25, 16, 80.0)
        .with_dt(1e-3)
        .with_grid(2, 2);
    p.forcing = Forcing::ConstantMassFlux { bulk: 0.5 };
    p
}

/// Every f64 bit of the per-rank solver trajectory state.
fn state_bits(dns: &ChannelDns) -> Vec<u64> {
    let s = dns.state();
    let mut bits = vec![s.steps, s.time.to_bits()];
    let (dyn_force, flux_integral) = dns.controller_state();
    bits.push(dyn_force.to_bits());
    bits.push(flux_integral.to_bits());
    for f in [s.u(), s.v(), s.w(), s.omega_y(), s.phi()] {
        for c in f {
            bits.push(c.re.to_bits());
            bits.push(c.im.to_bits());
        }
    }
    bits
}

fn seed_ic(dns: &mut ChannelDns) {
    dns.set_laminar(0.5);
    dns.add_perturbation(0.3, 21);
}

#[test]
fn restart_from_manifest_is_bitwise_identical() {
    let stem = test_dir("dns_chaos_bitwise").join("state");

    // uninterrupted: 6 steps straight through
    let reference = run_parallel(chaos_params(), |dns| {
        seed_ic(dns);
        for _ in 0..6 {
            dns.step();
        }
        state_bits(dns)
    });

    // interrupted: 3 steps, committed checkpoint, fresh world resumes
    let stem2 = stem.clone();
    run_parallel(chaos_params(), move |dns| {
        seed_ic(dns);
        for _ in 0..3 {
            dns.step();
        }
        checkpoint::save_with_manifest(dns, &stem2).unwrap();
    });
    let stem3 = stem.clone();
    let resumed = run_parallel(chaos_params(), move |dns| {
        let step = checkpoint::load_latest(dns, &stem3).unwrap();
        assert_eq!(step, 3);
        for _ in 0..3 {
            dns.step();
        }
        state_bits(dns)
    });

    assert_eq!(reference.len(), resumed.len());
    for (rank, (a, b)) in reference.iter().zip(&resumed).enumerate() {
        assert_eq!(a, b, "rank {rank}: restarted state diverged bitwise");
    }
}

/// Shared supervised body: restore from the manifest when restarting,
/// otherwise seed the deterministic IC; run to `total` steps with a
/// checkpoint every `every`.
fn supervised_body(
    dns: &mut ChannelDns,
    ctl: &dns_minimpi::Communicator,
    restarting: bool,
    stem: &std::path::Path,
    total: u64,
    every: u64,
) -> Vec<u64> {
    let restored = if restarting {
        match checkpoint::load_latest(dns, stem) {
            Ok(step) => Some(step),
            Err(checkpoint::CheckpointError::NoManifest { .. }) => None,
            Err(e) => panic!("restore failed: {e}"),
        }
    } else {
        None
    };
    if restored.is_none() {
        seed_ic(dns);
    }
    while dns.state().steps < total {
        dns.step();
        let s = dns.state().steps;
        if s.is_multiple_of(every) {
            checkpoint::save_with_manifest(dns, stem).unwrap();
        }
        ctl.poll_step_faults(s);
    }
    state_bits(dns)
}

#[test]
fn chaos_matrix_converges_bitwise_or_fails_clean() {
    let total = 6u64;
    let every = 2u64;

    let reference = run_parallel(chaos_params(), move |dns| {
        seed_ic(dns);
        for _ in 0..total {
            dns.step();
        }
        state_bits(dns)
    });

    // several seeds x the 2x2 grid: each seed picks a crash (rank, step)
    // pair for the first launch; restarts run clean
    for seed in [1u64, 7, 42, 1234] {
        let dir = test_dir(&format!("dns_chaos_seed{seed}"));
        let stem = dir.join("state");
        let crash_rank = (seed % 4) as usize;
        let crash_step = 2 + seed % (total - 2); // in [2, total)
        let plan = FaultPlan::none().crash_at_step(crash_rank, crash_step);

        let report = supervise(
            SupervisorConfig {
                ranks: 4,
                max_restarts: 2,
                recv_timeout: Duration::from_secs(5),
            },
            move |attempt| {
                if attempt == 0 {
                    plan.clone()
                } else {
                    FaultPlan::none()
                }
            },
            move |world, attempt| {
                let ctl = world.dup();
                let mut dns = ChannelDns::new(world, chaos_params());
                supervised_body(&mut dns, &ctl, attempt.index > 0, &stem, total, every)
            },
        );

        assert!(
            report.succeeded(),
            "seed {seed}: supervisor failed to recover:\n{}",
            report.events_json()
        );
        assert_eq!(report.restarts, 1, "seed {seed}");
        let results = report.results.unwrap();
        assert_eq!(results.len(), 4);
        for (rank, bits) in results.iter().enumerate() {
            assert_eq!(
                bits, &reference[rank],
                "seed {seed} rank {rank}: recovered state diverged bitwise"
            );
        }
        // the timeline records the injected crash and the recovery
        assert!(report.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::WorldFailed { failures }
                if failures.iter().any(|(r, m)| *r == crash_rank && m.contains("injected fault"))
        )));
        assert!(matches!(
            report.events.last().unwrap().kind,
            EventKind::Converged
        ));
    }
}

#[test]
fn transport_level_chaos_recovers_bitwise() {
    // seeded *operation-level* crash: fires mid-step inside the transform
    // pipeline, not at a polite step boundary — the restart must still
    // recover from whatever generation was last committed
    let total = 6u64;
    let every = 2u64;

    let reference = run_parallel(chaos_params(), move |dns| {
        seed_ic(dns);
        for _ in 0..total {
            dns.step();
        }
        state_bits(dns)
    });

    for seed in [3u64, 11] {
        let dir = test_dir(&format!("dns_chaos_op_seed{seed}"));
        let stem = dir.join("state");
        // a 2x2 grid runs thousands of transport ops over 6 steps; a
        // crash in the middle half of this horizon lands mid-run
        let plan = FaultPlan::seeded(seed, 4, 4000);

        let report = supervise(
            SupervisorConfig {
                ranks: 4,
                max_restarts: 2,
                recv_timeout: Duration::from_secs(5),
            },
            move |attempt| {
                if attempt == 0 {
                    plan.clone()
                } else {
                    FaultPlan::none()
                }
            },
            move |world, attempt| {
                let ctl = world.dup();
                let mut dns = ChannelDns::new(world, chaos_params());
                supervised_body(&mut dns, &ctl, attempt.index > 0, &stem, total, every)
            },
        );

        assert!(
            report.succeeded(),
            "seed {seed}: supervisor failed to recover:\n{}",
            report.events_json()
        );
        for (rank, bits) in report.results.unwrap().iter().enumerate() {
            assert_eq!(
                bits, &reference[rank],
                "seed {seed} rank {rank}: recovered state diverged bitwise"
            );
        }
    }
}

#[test]
fn pipelined_chaos_recovers_bitwise_to_blocking_reference() {
    // the strongest statement of "overlap is a pure scheduling change":
    // the reference trajectory runs *blocking* transposes, the chaos run
    // keeps the pipelined x-stage on (the default) and takes a seeded
    // operation-level crash while exchanges are in flight — recovery
    // must land bit-for-bit on the blocking trajectory
    let total = 6u64;
    let every = 2u64;

    let reference = run_parallel(chaos_params().with_pipeline(0), move |dns| {
        seed_ic(dns);
        for _ in 0..total {
            dns.step();
        }
        state_bits(dns)
    });

    let dir = test_dir("dns_chaos_pipelined");
    let stem = dir.join("state");
    // an op-indexed crash on a 2x2 grid lands inside the transform
    // pipeline, where up to three pipelined exchanges are outstanding;
    // the surviving ranks must surface RankDead, not hang
    let plan = FaultPlan::seeded(19, 4, 4000);

    let report = supervise(
        SupervisorConfig {
            ranks: 4,
            max_restarts: 2,
            recv_timeout: Duration::from_secs(5),
        },
        move |attempt| {
            if attempt == 0 {
                plan.clone()
            } else {
                FaultPlan::none()
            }
        },
        move |world, attempt| {
            let ctl = world.dup();
            let mut dns = ChannelDns::new(world, chaos_params().with_pipeline(4));
            supervised_body(&mut dns, &ctl, attempt.index > 0, &stem, total, every)
        },
    );

    assert!(
        report.succeeded(),
        "supervisor failed to recover the pipelined run:\n{}",
        report.events_json()
    );
    for (rank, bits) in report.results.unwrap().iter().enumerate() {
        assert_eq!(
            bits, &reference[rank],
            "rank {rank}: pipelined recovery diverged from the blocking reference"
        );
    }
}

#[test]
fn unrecoverable_chaos_reports_clean_failure() {
    let dir = test_dir("dns_chaos_unrecoverable");
    let stem = dir.join("state");
    // every launch crashes rank 2 immediately after step 1 — the
    // supervisor must exhaust its budget and give up in bounded time,
    // not hang
    let report = supervise(
        SupervisorConfig {
            ranks: 4,
            max_restarts: 1,
            recv_timeout: Duration::from_secs(2),
        },
        |_| FaultPlan::none().crash_at_step(2, 1),
        move |world, attempt| {
            let ctl = world.dup();
            let mut dns = ChannelDns::new(world, chaos_params());
            supervised_body(&mut dns, &ctl, attempt.index > 0, &stem, 6, 2)
        },
    );
    assert!(!report.succeeded());
    assert_eq!(report.restarts, 1);
    assert!(matches!(
        report.events.last().unwrap().kind,
        EventKind::GaveUp
    ));
    let json = report.events_json();
    assert!(json.contains("\"kind\":\"gave_up\""));
    assert!(json.contains("injected fault: rank 2"));
}
