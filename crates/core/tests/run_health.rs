//! End-to-end run-health monitoring through the `dns-run` binary.
//!
//! Three deterministic stories, each leaving one flight-recorder JSONL
//! artifact that must parse in full against the schema:
//!
//! * an injected persistent slowdown on one rank is flagged as a
//!   straggler — that rank and no other;
//! * an injected crash + checkpoint restart interleaves recovery
//!   markers with step records in a single timeline;
//! * a timestep far past the RK3 stability limit trips the CFL
//!   sentinel's abort threshold and fails the run with a typed reason.

use std::path::{Path, PathBuf};
use std::process::Command;

use dns_health::report::Replay;
use dns_health::schema::{parse_jsonl, FlightEvent, HealthEvent};

fn dns_run() -> &'static str {
    env!("CARGO_BIN_EXE_dns-run")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_args(out: &Path) -> Vec<String> {
    [
        "--nx",
        "16",
        "--ny",
        "25",
        "--nz",
        "16",
        "--re",
        "80",
        "--dt",
        "1e-3",
        "--steps",
        "8",
        "--stats-every",
        "8",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain(["--out".to_string(), out.display().to_string()])
    .collect()
}

fn load_events(log: &Path) -> Vec<FlightEvent> {
    let text = std::fs::read_to_string(log).expect("health log written");
    parse_jsonl(&text).expect("every health-log line parses against the schema")
}

#[test]
fn injected_slow_rank_is_flagged_as_the_only_straggler() {
    let dir = fresh_dir("run_health_straggler");
    let log = dir.join("health.jsonl");
    let output = Command::new(dns_run())
        .args(base_args(&dir))
        .args([
            "--grid",
            "2x2",
            "--slow-rank",
            "2",
            "--slow-ms",
            "60",
            "--straggler-steps",
            "2",
            "--health-log",
        ])
        .arg(&log)
        .output()
        .expect("spawn dns-run");
    assert!(
        output.status.success(),
        "monitored run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let events = load_events(&log);
    // one step record per rank per step
    let steps: Vec<(u64, usize)> = events
        .iter()
        .filter_map(|e| match e {
            FlightEvent::Step { step, rank, .. } => Some((*step, *rank)),
            _ => None,
        })
        .collect();
    assert_eq!(steps.len(), 8 * 4, "8 steps x 4 ranks of step records");
    for s in 1..=8u64 {
        for r in 0..4usize {
            assert!(steps.contains(&(s, r)), "missing step {s} rank {r}");
        }
    }

    // the injected slowdown lands on the busy side of the split: the
    // victim's recorded busy time exceeds every other rank's mean
    let replay = Replay::new(events);
    assert_eq!(
        replay.flagged_stragglers(),
        vec![2],
        "exactly the slowed rank must be flagged"
    );
    // non-degenerate latency distribution
    let p50 = replay.wall.quantile(0.5);
    let p99 = replay.wall.quantile(0.99);
    assert!(p50 > 0.0 && p99 >= p50, "p50 {p50}, p99 {p99}");
    let rendered = replay.render();
    assert!(
        rendered.contains("STRAGGLER rank 2"),
        "report must call out the straggler:\n{rendered}"
    );
}

#[test]
fn crash_recovery_markers_interleave_with_step_records() {
    let dir = fresh_dir("run_health_recovery");
    let log = dir.join("health.jsonl");
    let output = Command::new(dns_run())
        .args(base_args(&dir))
        .args([
            "--grid",
            "2x2",
            "--checkpoint-every",
            "3",
            "--max-restarts",
            "2",
            "--crash-at-step",
            "5",
            "--health-log",
        ])
        .arg(&log)
        .output()
        .expect("spawn dns-run");
    assert!(
        output.status.success(),
        "recovered run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let events = load_events(&log);
    let attempts: Vec<(usize, u64)> = events
        .iter()
        .filter_map(|e| match e {
            FlightEvent::RunStart {
                attempt,
                resumed_from,
                ..
            } => Some((*attempt, *resumed_from)),
            _ => None,
        })
        .collect();
    assert_eq!(
        attempts,
        vec![(0, 0), (1, 3)],
        "fresh attempt, then a restart resuming from the step-3 checkpoint"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            FlightEvent::Checkpoint {
                step: 3,
                attempt: 0
            }
        )),
        "the checkpoint the restart resumed from must be in the timeline"
    );
    let recovery_kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            FlightEvent::Recovery { kind, .. } => Some(kind.as_str()),
            _ => None,
        })
        .collect();
    assert!(recovery_kinds.contains(&"world_failed"));
    assert!(recovery_kinds.contains(&"restart_issued"));
    assert!(recovery_kinds.contains(&"converged"));
    // the restarted attempt re-ran the lost steps to completion
    assert!(events.iter().any(|e| matches!(
        e,
        FlightEvent::Step {
            step: 8,
            rank: 0,
            ..
        }
    )));
    // and the whole interleaved file still renders
    let rendered = Replay::new(events).render();
    assert!(rendered.contains("recovery restart_issued"), "{rendered}");
}

#[test]
fn cfl_sentinel_aborts_a_diverging_run_with_a_typed_reason() {
    let dir = fresh_dir("run_health_sentinel");
    let log = dir.join("health.jsonl");
    let output = Command::new(dns_run())
        .args([
            "--nx",
            "16",
            "--ny",
            "25",
            "--nz",
            "16",
            "--re",
            "80",
            "--steps",
            "4",
            "--stats-every",
            "4",
        ])
        .args(["--dt", "0.5", "--out"])
        .arg(&dir)
        .arg("--health-log")
        .arg(&log)
        .output()
        .expect("spawn dns-run");
    assert!(
        !output.status.success(),
        "a dt this far past the RK3 limit must fail the run"
    );

    let events = load_events(&log);
    let cfl = events
        .iter()
        .find_map(|e| match e {
            FlightEvent::Sentinel { cfl, .. } => Some(*cfl),
            _ => None,
        })
        .expect("the sentinel record that triggered the abort is in the log");
    assert!(
        cfl > 1.7,
        "recorded CFL {cfl} should be past the abort limit"
    );
    assert!(
        events.iter().any(|e| match e {
            FlightEvent::Recovery { detail, .. } =>
                detail.contains("physics sentinel abort") && detail.contains("cfl"),
            _ => false,
        }),
        "the typed abort reason must reach the folded recovery timeline"
    );
    // no straggler noise from an aborted single-rank run
    assert!(!events
        .iter()
        .any(|e| matches!(e, FlightEvent::Health(HealthEvent::Straggler { .. }))));
}
