//! Resume continuity of the time-averaged statistics accumulator: a run
//! that crashes mid-averaging-window and recovers from its checkpoint
//! must end with an accumulator byte-for-byte identical to an
//! uninterrupted control run's — no silently restarted averages, no
//! dropped or duplicated samples.
//!
//! The accumulator rides inside the checkpoint record, so comparing the
//! final committed generation byte-for-byte covers the flow state *and*
//! the statistics in one assertion; the stats section is then decoded on
//! its own to pin the expected sampling timeline.

use std::path::{Path, PathBuf};
use std::process::Command;

use dns_core::stats::{StatsAccumulator, STATS_SECTION_MAGIC};

fn dns_run() -> &'static str {
    env!("CARGO_BIN_EXE_dns-run")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_args(out: &Path) -> Vec<String> {
    [
        "--nx",
        "16",
        "--ny",
        "25",
        "--nz",
        "16",
        "--re",
        "80",
        "--dt",
        "1e-3",
        "--steps",
        "8",
        "--checkpoint-every",
        "3",
        "--stats-sample-every",
        "2",
        "--stats-warmup",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain(["--out".to_string(), out.display().to_string()])
    .collect()
}

/// Extract and decode the stats section of a checkpoint record: the
/// bytes from its `"DNSSTAT1"` magic up to the trailing CRC word.
fn stats_section(ckpt: &[u8]) -> StatsAccumulator {
    let magic = STATS_SECTION_MAGIC.to_le_bytes();
    let pos = ckpt
        .windows(8)
        .position(|w| w == magic)
        .expect("checkpoint carries no stats section");
    StatsAccumulator::decode(&ckpt[pos..ckpt.len() - 4]).expect("stats section decodes")
}

#[test]
fn crashed_run_resumes_statistics_bitwise() {
    let ref_dir = fresh_dir("stats_continuity_ref");
    let chaos_dir = fresh_dir("stats_continuity_chaos");

    // uninterrupted control
    let output = Command::new(dns_run())
        .args(base_args(&ref_dir))
        .output()
        .expect("spawn dns-run");
    assert!(
        output.status.success(),
        "reference run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    // crash at step 7: the step-6 checkpoint already holds the samples
    // from steps 4 and 6, so the resumed attempt *continues* a non-empty
    // accumulator rather than replaying the whole window
    let output = Command::new(dns_run())
        .args(base_args(&chaos_dir))
        .args(["--crash-at-step", "7", "--max-restarts", "2"])
        .output()
        .expect("spawn dns-run");
    assert!(
        output.status.success(),
        "chaos run failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let a = std::fs::read(ref_dir.join("state.s8.r0x0.ckpt")).expect("reference checkpoint");
    let b = std::fs::read(chaos_dir.join("state.s8.r0x0.ckpt")).expect("recovered checkpoint");
    assert_eq!(
        a, b,
        "final state+stats record differs from the uninterrupted run"
    );

    // the shared timeline: warmup 2, cadence 2 over 8 steps → samples at
    // steps 4, 6, 8, with the first two delivered through the restart
    let acc = stats_section(&a);
    assert_eq!(acc.count(), 3);
    let steps: Vec<u64> = acc.history().iter().map(|h| h.step).collect();
    assert_eq!(steps, [4, 6, 8]);
    let mean = acc.mean().expect("averaged profiles");
    assert!(mean.u_tau.is_finite() && mean.u_tau > 0.0);
    assert_eq!(mean.y.len(), 25);
}

#[test]
fn fresh_restart_without_checkpoint_starts_a_new_window() {
    // control for the control: without --max-restarts the crashed run
    // dies; rerunning fresh in the same dir must not inherit anything —
    // ResumePolicy::Fresh ignores the stale generation on attempt 0
    let dir = fresh_dir("stats_continuity_fresh");
    let output = Command::new(dns_run())
        .args(base_args(&dir))
        .args(["--crash-at-step", "5"])
        .output()
        .expect("spawn dns-run");
    assert!(!output.status.success(), "unbudgeted crash must fail");

    let output = Command::new(dns_run())
        .args(base_args(&dir))
        .output()
        .expect("spawn dns-run");
    assert!(output.status.success());
    let acc = stats_section(&std::fs::read(dir.join("state.s8.r0x0.ckpt")).unwrap());
    let steps: Vec<u64> = acc.history().iter().map(|h| h.step).collect();
    assert_eq!(steps, [4, 6, 8], "fresh run must carry only its own window");
}
