//! End-to-end recovery through the `dns-run` binary: an injected rank
//! crash at a fixed step must recover via checkpoint restart and leave a
//! final state byte-for-byte identical to an uninterrupted run's.

use std::path::{Path, PathBuf};
use std::process::Command;

fn dns_run() -> &'static str {
    env!("CARGO_BIN_EXE_dns-run")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_args(out: &Path) -> Vec<String> {
    [
        "--nx",
        "16",
        "--ny",
        "25",
        "--nz",
        "16",
        "--re",
        "80",
        "--dt",
        "1e-3",
        "--steps",
        "8",
        "--stats-every",
        "4",
        "--checkpoint-every",
        "3",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain(["--out".to_string(), out.display().to_string()])
    .collect()
}

#[test]
fn injected_crash_recovers_bitwise_identical_final_state() {
    let ref_dir = fresh_dir("dnsrun_recovery_ref");
    let chaos_dir = fresh_dir("dnsrun_recovery_chaos");
    let log = chaos_dir.join("recovery.json");

    let status = Command::new(dns_run())
        .args(base_args(&ref_dir))
        .output()
        .expect("spawn dns-run");
    assert!(
        status.status.success(),
        "reference run failed:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );

    let output = Command::new(dns_run())
        .args(base_args(&chaos_dir))
        .args([
            "--crash-at-step",
            "5",
            "--max-restarts",
            "2",
            "--recovery-log",
            log.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dns-run");
    assert!(
        output.status.success(),
        "chaos run failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("1 restart(s) issued, run recovered"),
        "expected a supervised recovery in:\n{stdout}"
    );

    // the committed final generation (steps=8 -> state.s8) must be
    // byte-for-byte identical between the two runs
    let a = std::fs::read(ref_dir.join("state.s8.r0x0.ckpt")).expect("reference checkpoint");
    let b = std::fs::read(chaos_dir.join("state.s8.r0x0.ckpt")).expect("recovered checkpoint");
    assert_eq!(a, b, "recovered final state differs from uninterrupted run");

    // recovery log records the injected crash and the converged retry
    let events = std::fs::read_to_string(&log).expect("recovery log");
    assert!(events.contains("\"kind\":\"world_failed\""), "{events}");
    assert!(
        events.contains("injected fault: rank 0 crashed at step 5"),
        "{events}"
    );
    assert!(events.contains("\"kind\":\"converged\""), "{events}");
}

#[test]
fn crash_without_restart_budget_exits_nonzero() {
    let dir = fresh_dir("dnsrun_recovery_fail");
    let log = dir.join("recovery.json");
    let output = Command::new(dns_run())
        .args(base_args(&dir))
        .args([
            "--crash-at-step",
            "5",
            "--recovery-log",
            log.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dns-run");
    assert!(
        !output.status.success(),
        "run with an unrecovered crash must fail"
    );
    let events = std::fs::read_to_string(&log).expect("recovery log");
    assert!(events.contains("\"kind\":\"gave_up\""), "{events}");
}
