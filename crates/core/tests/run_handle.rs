//! The contract the campaign scheduler's preemption rests on: pausing a
//! run mid-flight (checkpoint + wind the world down) and resuming it in
//! a fresh world produces **bitwise-identical** final state to the same
//! run left uninterrupted — both the per-rank checkpoint payload and the
//! manifest that seals it.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dns_core::run::{InitialCondition, RunConfig, RunHandle, RunSpec, RunStatus};
use dns_core::Params;

const STEPS: u64 = 40;

fn spec() -> RunSpec {
    RunSpec {
        name: "roundtrip".into(),
        params: Params::channel(16, 25, 16, 50.0).with_dt(1e-3),
        steps: STEPS,
        ckpt_every: 0,
        ic: InitialCondition::Turbulent {
            amplitude: 0.3,
            seed: 11,
        },
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dns-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn final_generation(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    let ckpt = std::fs::read(dir.join(format!("state.s{STEPS}.r0x0.ckpt"))).unwrap();
    let manifest = std::fs::read(dir.join(format!("state.s{STEPS}.manifest"))).unwrap();
    (ckpt, manifest)
}

#[test]
fn preempted_run_matches_uninterrupted_run_bitwise() {
    // control: the same spec, never interrupted
    let control_dir = fresh_dir("control");
    let control = RunHandle::spawn(spec(), RunConfig::in_dir(&control_dir));
    let outcome = control.join();
    assert_eq!(outcome.status, RunStatus::Done);
    assert_eq!(outcome.steps_done, STEPS);

    // preempted: pause mid-flight, then resume in a fresh world
    let dir = fresh_dir("preempted");
    let mut h = RunHandle::spawn(spec(), RunConfig::in_dir(&dir));
    let deadline = Instant::now() + Duration::from_secs(60);
    while h.current_step() < 3 {
        assert!(Instant::now() < deadline, "run never reached step 3");
        std::thread::sleep(Duration::from_millis(1));
    }
    h.pause();
    h.wait_not_running();
    assert_eq!(
        h.status(),
        RunStatus::Paused,
        "run outpaced the pause request"
    );
    let paused_at = h.current_step();
    assert!(
        (3..STEPS).contains(&paused_at),
        "pause landed at step {paused_at}"
    );
    // the pause committed a restorable generation at the pause step
    assert!(dir.join(format!("state.s{paused_at}.manifest")).exists());

    h.resume().unwrap();
    let outcome = h.join();
    assert_eq!(outcome.status, RunStatus::Done);
    assert_eq!(outcome.steps_done, STEPS);

    // the headline guarantee: final states agree byte for byte
    let (ckpt_a, manifest_a) = final_generation(&control_dir);
    let (ckpt_b, manifest_b) = final_generation(&dir);
    assert_eq!(
        ckpt_a, ckpt_b,
        "preempted final checkpoint diverged bitwise"
    );
    assert_eq!(manifest_a, manifest_b, "preempted final manifest diverged");

    let _ = std::fs::remove_dir_all(&control_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_runs_that_are_not_paused() {
    let dir = fresh_dir("not-paused");
    let mut s = spec();
    s.steps = 2;
    let mut h = RunHandle::spawn(s, RunConfig::in_dir(&dir));
    h.wait_not_running();
    assert_eq!(h.status(), RunStatus::Done);
    assert!(h.resume().is_err());
    assert_eq!(h.join().status, RunStatus::Done);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn observer_hooks_see_every_step() {
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountSteps(AtomicU64);
    impl dns_core::run::RunObserver for CountSteps {
        fn on_step(&self, _dns: &dns_core::ChannelDns, ctx: dns_core::run::StepCtx) {
            if ctx.root {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    let dir = fresh_dir("observer");
    let mut s = spec();
    s.steps = 5;
    let counter = Arc::new(CountSteps(AtomicU64::new(0)));
    let h = RunHandle::spawn_observed(s, RunConfig::in_dir(&dir), counter.clone());
    assert_eq!(h.join().status, RunStatus::Done);
    assert_eq!(counter.0.load(Ordering::SeqCst), 5);
    let _ = std::fs::remove_dir_all(&dir);
}
