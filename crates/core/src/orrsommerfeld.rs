//! Orr-Sommerfeld linear-stability validation.
//!
//! The definitive accuracy benchmark for a wall-normal discretisation:
//! the least-stable eigenvalue of plane Poiseuille flow at `Re = 10^4`,
//! `alpha = 1` is known to many digits (Orszag, JFM 1971):
//! `c = 0.23752649 + 0.00373967i`. Hitting it validates the B-spline
//! collocation operators up to the fourth derivative, the boundary
//! treatment, and the wavenumber bookkeeping — the same machinery the
//! DNS time advance uses.
//!
//! The eigenvalue is found by shifted inverse iteration on the
//! generalised pencil `A v = c B v` with
//!
//! ```text
//! A = U (D2 - k^2) - U'' - (D2 - k^2)^2 / (i alpha Re)
//! B = D2 - k^2
//! ```
//!
//! and clamped boundary rows `v(+-1) = v'(+-1) = 0`.

use crate::C64;
use dns_banded::{CornerBanded, DenseLu};
use dns_bspline::{chebyshev_like_breakpoints, BsplineBasis, CollocationOps};

/// Result of the eigenvalue search.
#[derive(Clone, Debug)]
pub struct OsEigen {
    /// Complex phase speed `c` (flow is unstable when `Im c > 0`).
    pub c: C64,
    /// Inverse-iteration steps used.
    pub iterations: usize,
    /// Spline coefficients of the eigenfunction `v(y)` (normalised to
    /// unit maximum magnitude at the collocation points).
    pub v_coef: Vec<C64>,
    /// The basis the coefficients live on.
    basis: BsplineBasis,
}

impl OsEigen {
    /// Evaluate the eigenfunction at `y in [-1, 1]`.
    pub fn eval_v(&self, y: f64) -> C64 {
        let re: Vec<f64> = self.v_coef.iter().map(|c| c.re).collect();
        let im: Vec<f64> = self.v_coef.iter().map(|c| c.im).collect();
        C64::new(self.basis.eval(&re, y), self.basis.eval(&im, y))
    }
}

/// Orszag's reference value at `Re = 10^4`, `alpha = 1`.
pub const ORSZAG_C: C64 = C64 {
    re: 0.237_526_49,
    im: 0.003_739_67,
};

/// Dense row of a corner-banded operator (assembly helper).
fn dense_rows(m: &CornerBanded) -> Vec<f64> {
    m.to_dense()
}

/// Find the eigenvalue of the Orr-Sommerfeld pencil closest to `shift`
/// for plane Poiseuille flow (`U = 1 - y^2`) using `ny` spline
/// collocation points.
pub fn least_stable(ny: usize, re: f64, alpha: f64, shift: C64) -> OsEigen {
    let order = 8usize;
    let basis = BsplineBasis::new(order, &chebyshev_like_breakpoints(ny - order + 1));
    let ops = CollocationOps::new(&basis);
    let n = ops.n();
    let k2 = alpha * alpha;

    let b0 = dense_rows(ops.b0());
    let b2 = dense_rows(ops.b2());
    let b4 = dense_rows(&ops.deriv_matrix(4));
    let pts = ops.points().to_vec();

    // interior operator rows
    let inv_iar = C64::new(0.0, -1.0) / (alpha * re); // 1/(i alpha Re) = -i/(alpha Re)
    let mut a = vec![C64::new(0.0, 0.0); n * n];
    let mut b = vec![C64::new(0.0, 0.0); n * n];
    for i in 0..n {
        let u = 1.0 - pts[i] * pts[i];
        let upp = -2.0;
        for j in 0..n {
            let lap = b2[i * n + j] - k2 * b0[i * n + j];
            let bih = b4[i * n + j] - 2.0 * k2 * b2[i * n + j] + k2 * k2 * b0[i * n + j];
            a[i * n + j] = C64::new(u * lap - upp * b0[i * n + j], 0.0) - inv_iar * bih;
            b[i * n + j] = C64::new(lap, 0.0);
        }
    }
    // clamped boundary rows: v(+-1) = 0 on rows 0, n-1; v'(+-1) = 0 on
    // rows 1, n-2 (B rows zeroed: the BCs carry no eigenvalue)
    let bc_rows: [(usize, f64, usize); 4] =
        [(0, -1.0, 0), (n - 1, 1.0, 0), (1, -1.0, 1), (n - 2, 1.0, 1)];
    for &(row, x, d) in &bc_rows {
        let (first, ders) = basis.eval_derivs(x, d);
        for j in 0..n {
            a[row * n + j] = C64::new(0.0, 0.0);
            b[row * n + j] = C64::new(0.0, 0.0);
        }
        for (j, &v) in ders[d].iter().enumerate() {
            a[row * n + (first + j)] = C64::new(v, 0.0);
        }
    }

    // shifted inverse iteration on (A - shift B)^-1 B
    let mut shifted = vec![C64::new(0.0, 0.0); n * n];
    for i in 0..n * n {
        shifted[i] = a[i] - shift * b[i];
    }
    let lu = DenseLu::factor(n, &shifted).expect("shifted pencil nonsingular");
    let mut v: Vec<C64> = (0..n)
        .map(|i| {
            // smooth clamped seed
            let y = pts[i];
            C64::new((1.0 - y * y) * (1.0 - y * y), 0.1 * (1.0 - y * y))
        })
        .collect();
    let matvec = |m: &[C64], x: &[C64]| -> Vec<C64> {
        (0..n)
            .map(|i| (0..n).map(|j| m[i * n + j] * x[j]).sum())
            .collect()
    };
    let mut c_est = shift;
    let mut iterations = 0;
    for it in 0..100 {
        iterations = it + 1;
        let mut w = matvec(&b, &v);
        lu.solve(&mut w);
        // normalise
        let norm = w.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        for z in w.iter_mut() {
            *z /= norm;
        }
        // generalised Rayleigh quotient c = (v* A v) / (v* B v)
        let av = matvec(&a, &w);
        let bv = matvec(&b, &w);
        let num: C64 = w.iter().zip(&av).map(|(x, y)| x.conj() * y).sum();
        let den: C64 = w.iter().zip(&bv).map(|(x, y)| x.conj() * y).sum();
        let c_new = num / den;
        let delta = (c_new - c_est).norm();
        c_est = c_new;
        v = w;
        if delta < 1e-12 {
            break;
        }
    }
    // normalise the eigenfunction by its largest collocation value
    let mut vals = vec![C64::new(0.0, 0.0); n];
    let b0 = ops.b0();
    // dense multiply via the banded operator
    for (i, val) in vals.iter_mut().enumerate() {
        let ci = b0.col_start(i);
        let mut s = C64::new(0.0, 0.0);
        for j in ci..(ci + b0.width()).min(n) {
            s += b0.get(i, j) * v[j];
        }
        *val = s;
    }
    let peak = vals
        .iter()
        .cloned()
        .max_by(|a, b| a.norm().partial_cmp(&b.norm()).unwrap())
        .unwrap();
    let scale = if peak.norm() > 0.0 {
        C64::new(1.0, 0.0) / peak
    } else {
        C64::new(1.0, 0.0)
    };
    let v_coef: Vec<C64> = v.iter().map(|z| z * scale).collect();
    OsEigen {
        c: c_est,
        iterations,
        v_coef,
        basis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orszag_eigenvalue_is_reproduced() {
        // the classic: Re = 10^4, alpha = 1; Orszag (1971) gives
        // c = 0.23752649 + 0.00373967i
        let r = least_stable(96, 1e4, 1.0, C64::new(0.2375, 0.0037));
        let err = (r.c - ORSZAG_C).norm();
        // Greville collocation with boundary-adjacent rows replaced by
        // the clamped conditions carries a small systematic bias
        // (~5e-5); the eigenvalue is reproduced to four significant
        // digits in both parts
        assert!(
            err < 1e-4,
            "c = {} vs Orszag {} (err {err:.2e}, {} iterations)",
            r.c,
            ORSZAG_C,
            r.iterations
        );
        // the mode is *unstable*: positive imaginary part
        assert!(r.c.im > 0.0);
    }

    #[test]
    fn low_reynolds_flow_is_stable() {
        // at Re = 2000 (below the critical 5772) the least-stable mode
        // near the wall branch is damped
        let r = least_stable(64, 2000.0, 1.0, C64::new(0.31, -0.02));
        assert!(r.c.im < 0.0, "c = {} should be damped", r.c);
    }

    #[test]
    fn eigenvalue_is_resolution_robust() {
        // the result must not depend on the grid beyond the small
        // boundary-treatment bias
        for ny in [64usize, 128] {
            let r = least_stable(ny, 1e4, 1.0, C64::new(0.2375, 0.0037));
            assert!((r.c - ORSZAG_C).norm() < 1e-4, "ny={ny}: c = {}", r.c);
        }
    }
}
