//! Vorticity fields and vorticity statistics — classic channel-DNS data
//! products (Kim, Moin & Moser 1987 report all three r.m.s. vorticity
//! profiles), and the source of figure 8's visualised field.
//!
//! All three components are evaluated spectrally from the velocity
//! coefficients:
//!
//! ```text
//! omega_x = dw/dy - dv/dz = d/dy w - ikz v
//! omega_y = du/dz - dw/dx = ikz u - ikx w      (the prognostic variable)
//! omega_z = dv/dx - du/dy = ikx v - d/dy u
//! ```

use crate::solver::ChannelDns;
use crate::wallnormal::dy_coefficients;
use crate::C64;

/// Spline-coefficient fields of the three vorticity components.
pub struct VorticityFields {
    /// Streamwise vorticity coefficients.
    pub omega_x: Vec<C64>,
    /// Wall-normal vorticity coefficients (copied from the state).
    pub omega_y: Vec<C64>,
    /// Spanwise vorticity coefficients.
    pub omega_z: Vec<C64>,
}

/// Evaluate all vorticity components for the current state.
pub fn vorticity(dns: &ChannelDns) -> VorticityFields {
    let ny = dns.params().ny;
    let len = dns.field_len();
    let mut out = VorticityFields {
        omega_x: vec![C64::new(0.0, 0.0); len],
        omega_y: dns.state().omega_y().to_vec(),
        omega_z: vec![C64::new(0.0, 0.0); len],
    };
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) {
            continue;
        }
        let r = dns.line_range(m);
        let (ikx, ikz, _) = dns.mode_wavenumbers(m);
        let cw_y = dy_coefficients(dns.ops(), &dns.state().w()[r.clone()]);
        let cu_y = dy_coefficients(dns.ops(), &dns.state().u()[r.clone()]);
        for j in 0..ny {
            out.omega_x[r.start + j] = cw_y[j] - ikz * dns.state().v()[r.start + j];
            out.omega_z[r.start + j] = ikx * dns.state().v()[r.start + j] - cu_y[j];
        }
        if dns.is_mean(m) {
            // the prognostic omega_y is unused at the mean mode; the true
            // mean wall-normal vorticity is zero
            for j in 0..ny {
                out.omega_y[r.start + j] = C64::new(0.0, 0.0);
            }
        }
    }
    out
}

/// R.m.s. vorticity-fluctuation profiles (collective).
pub struct VorticityProfiles {
    /// Collocation points.
    pub y: Vec<f64>,
    /// `<omega_x'^2>(y)`.
    pub wx2: Vec<f64>,
    /// `<omega_y'^2>(y)`.
    pub wy2: Vec<f64>,
    /// `<omega_z'^2>(y)` (fluctuating part; the mean `-d<u>/dy` is
    /// reported separately).
    pub wz2: Vec<f64>,
    /// Mean spanwise vorticity `<omega_z>(y) = -d<u>/dy`.
    pub wz_mean: Vec<f64>,
}

/// Compute vorticity statistics (collective).
pub fn vorticity_profiles(dns: &ChannelDns) -> VorticityProfiles {
    let f = vorticity(dns);
    let ny = dns.params().ny;
    let ops = dns.ops();
    let mut acc = vec![0.0f64; 4 * ny];
    let mut vals = vec![C64::new(0.0, 0.0); ny];
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) {
            continue;
        }
        let r = dns.line_range(m);
        if dns.is_mean(m) {
            ops.b0().matvec_complex(&f.omega_z[r.clone()], &mut vals);
            for j in 0..ny {
                acc[3 * ny + j] += vals[j].re;
            }
            continue;
        }
        let w = dns.mode_weight(m);
        for (c, field) in [&f.omega_x, &f.omega_y, &f.omega_z].into_iter().enumerate() {
            ops.b0().matvec_complex(&field[r.clone()], &mut vals);
            for j in 0..ny {
                acc[c * ny + j] += w * vals[j].norm_sqr();
            }
        }
    }
    let acc = dns.pfft().comm_a().allreduce(&acc, |a, b| a + b);
    let acc = dns.pfft().comm_b().allreduce(&acc, |a, b| a + b);
    VorticityProfiles {
        y: ops.points().to_vec(),
        wx2: acc[..ny].to_vec(),
        wy2: acc[ny..2 * ny].to_vec(),
        wz2: acc[2 * ny..3 * ny].to_vec(),
        wz_mean: acc[3 * ny..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::solver::run_serial;

    #[test]
    fn laminar_vorticity_is_mean_shear_only() {
        let p = Params::channel(16, 25, 16, 40.0);
        let v = run_serial(p, |dns| {
            dns.set_laminar(1.0);
            vorticity_profiles(dns)
        });
        // no fluctuations
        assert!(v.wx2.iter().all(|&x| x.abs() < 1e-20));
        assert!(v.wy2.iter().all(|&x| x.abs() < 1e-20));
        assert!(v.wz2.iter().all(|&x| x.abs() < 1e-20));
        // <omega_z> = -du/dy = y * Re for the Poiseuille profile
        for (&y, &wz) in v.y.iter().zip(&v.wz_mean) {
            let want = y * 40.0;
            assert!((wz - want).abs() < 1e-6 * (1.0 + want.abs()), "y={y}");
        }
    }

    #[test]
    fn vorticity_is_consistent_with_the_prognostic_omega_y() {
        // the derived omega_y (from u, w) must equal the evolved one
        let p = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let worst = run_serial(p, |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.3, 19);
            for _ in 0..3 {
                dns.step();
            }
            let ny = dns.params().ny;
            let mut worst = 0.0f64;
            for m in 0..dns.local_modes() {
                if dns.is_nyquist(m) || dns.is_mean(m) {
                    continue;
                }
                let r = dns.line_range(m);
                let (ikx, ikz, _) = dns.mode_wavenumbers(m);
                for j in 0..ny {
                    let derived =
                        ikz * dns.state().u()[r.start + j] - ikx * dns.state().w()[r.start + j];
                    let evolved = dns.state().omega_y()[r.start + j];
                    worst = worst.max((derived - evolved).norm());
                }
            }
            worst
        });
        assert!(worst < 1e-10, "omega_y consistency {worst}");
    }

    #[test]
    fn enstrophy_relates_to_dissipation_for_homogeneous_parts() {
        // in fully periodic flow, nu*<|omega|^2> equals the dissipation;
        // with walls they differ by a boundary flux, but both must be
        // positive and of the same magnitude for a developed field
        let p = Params::channel(16, 33, 16, 120.0).with_dt(5e-4);
        let (ens, eps) = run_serial(p, |dns| {
            dns.set_laminar(0.4);
            dns.add_perturbation(0.4, 57);
            for _ in 0..30 {
                dns.step();
            }
            let v = vorticity_profiles(dns);
            let w = dns_bspline::integration_weights(dns.ops());
            let nu = dns.params().nu;
            let ens: f64 = (0..v.y.len())
                .map(|j| nu * w[j] * (v.wx2[j] + v.wy2[j] + v.wz2[j]))
                .sum();
            let b = crate::budget::budget(dns);
            (ens, b.total_dissipation)
        });
        assert!(ens > 0.0 && eps > 0.0);
        let ratio = ens / eps;
        assert!((0.3..3.0).contains(&ratio), "enstrophy/dissipation {ratio}");
    }
}
