//! Wall-normal grid refinement: transfer a running state onto a solver
//! with a different y resolution (the standard production workflow:
//! equilibrate cheap, refine, continue — the Re_tau = 5200 campaign was
//! seeded exactly this way from lower-resolution fields).

use crate::solver::ChannelDns;
use dns_bspline::resample_complex;

/// Transfer `src`'s state onto `dst`, resampling every mode's y-line
/// onto `dst`'s spline space. Horizontal resolutions and the process
/// grid must match; only `ny` (and the y grid) may differ.
///
/// # Panics
/// If the horizontal mode layouts differ.
pub fn transfer_y(src: &ChannelDns, dst: &mut ChannelDns) {
    let (ps, pd) = (src.params(), dst.params());
    assert_eq!(
        (ps.nx, ps.nz, ps.pa, ps.pb),
        (pd.nx, pd.nz, pd.pa, pd.pb),
        "only the wall-normal grid may change"
    );
    let src_basis = src.ops().basis().clone();
    let (sny, dny) = (ps.ny, pd.ny);
    let modes = src.local_modes();
    assert_eq!(modes, dst.local_modes());
    let mut fields = Vec::with_capacity(5);
    for field in [
        src.state().u(),
        src.state().v(),
        src.state().w(),
        src.state().omega_y(),
        src.state().phi(),
    ] {
        let mut out = vec![crate::C64::new(0.0, 0.0); modes * dny];
        for m in 0..modes {
            let line = &field[m * sny..(m + 1) * sny];
            let res = resample_complex(&src_basis, line, dst.ops());
            out[m * dny..(m + 1) * dny].copy_from_slice(&res);
        }
        fields.push(out);
    }
    let phi = fields.pop().unwrap();
    let om = fields.pop().unwrap();
    let w = fields.pop().unwrap();
    let v = fields.pop().unwrap();
    let u = fields.pop().unwrap();
    dst.restore_state(u, v, w, om, phi, src.state().time, src.state().steps);
}

/// Transfer `src`'s state onto `dst` allowing *any* resolution change
/// (nx, ny, nz), single-rank solvers only: modes shared by both spectral
/// bases are copied (resampled in y), new modes start at zero, dropped
/// modes are truncated — spectral grid refinement for restarts.
///
/// # Panics
/// If either solver is distributed (`pa * pb > 1`).
pub fn transfer(src: &ChannelDns, dst: &mut ChannelDns) {
    let (ps, pd) = (src.params(), dst.params());
    assert_eq!(
        (ps.pa, ps.pb, pd.pa, pd.pb),
        (1, 1, 1, 1),
        "horizontal refinement is a single-rank (post-processing) operation"
    );
    let src_basis = src.ops().basis().clone();
    let (sny, dny) = (ps.ny, pd.ny);
    let (ssx, dsx) = (ps.nx / 2, pd.nx / 2);

    // map a destination mode to the matching source mode, if any
    let src_mode_of = |kx: usize, kz_signed: i64| -> Option<usize> {
        if kx >= ssx {
            return None;
        }
        let snz = ps.nz as i64;
        if kz_signed.abs() >= snz / 2 {
            return None;
        }
        let kz_idx = ((kz_signed + snz) % snz) as usize;
        Some(kz_idx * ssx + kx)
    };

    let fields_src = [
        src.state().u(),
        src.state().v(),
        src.state().w(),
        src.state().omega_y(),
        src.state().phi(),
    ];
    let mut fields_dst = Vec::with_capacity(5);
    let dst_modes = dst.local_modes();
    for field in fields_src {
        let mut out = vec![crate::C64::new(0.0, 0.0); dst_modes * dny];
        for m in 0..dst_modes {
            let kx = m % dsx;
            let kz_idx = m / dsx;
            let dnz = pd.nz as i64;
            let kz_signed = if (kz_idx as i64) < dnz / 2 {
                kz_idx as i64
            } else if kz_idx as i64 == dnz / 2 {
                continue; // Nyquist slot stays zero
            } else {
                kz_idx as i64 - dnz
            };
            if let Some(sm) = src_mode_of(kx, kz_signed) {
                let line = &field[sm * sny..(sm + 1) * sny];
                let res = resample_complex(&src_basis, line, dst.ops());
                out[m * dny..(m + 1) * dny].copy_from_slice(&res);
            }
        }
        fields_dst.push(out);
    }
    let phi = fields_dst.pop().unwrap();
    let om = fields_dst.pop().unwrap();
    let w = fields_dst.pop().unwrap();
    let v = fields_dst.pop().unwrap();
    let u = fields_dst.pop().unwrap();
    dst.restore_state(u, v, w, om, phi, src.state().time, src.state().steps);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::stats::profiles;
    use dns_minimpi as mpi;

    #[test]
    fn refined_state_represents_the_same_flow() {
        // run coarse, refine in y, verify profiles and wall behaviour
        let coarse = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let fine = Params::channel(16, 37, 16, 80.0).with_dt(1e-3);
        let out = mpi::run(1, move |world| {
            let mut src = ChannelDns::new(world.dup(), coarse.clone());
            src.set_laminar(0.5);
            src.add_perturbation(0.3, 61);
            for _ in 0..3 {
                src.step();
            }
            let p_src = profiles(&src);
            let mut dst = ChannelDns::new(world, fine.clone());
            transfer_y(&src, &mut dst);
            let p_dst = profiles(&dst);
            // compare the mean profile at shared physical locations via
            // centreline and bulk integrals
            let bulk_err = (p_src.bulk_velocity - p_dst.bulk_velocity).abs();
            // the refined solver must remain integrable: take a step
            dst.step();
            let p_after = profiles(&dst);
            (
                bulk_err,
                p_src.u_tau,
                p_dst.u_tau,
                p_after.u_mean.iter().all(|x| x.is_finite()),
                dst.state().steps,
            )
        });
        let (bulk_err, utau_src, utau_dst, finite, steps) = out[0];
        assert!(bulk_err < 1e-6, "bulk changed by {bulk_err}");
        assert!(
            (utau_src - utau_dst).abs() < 1e-4 * utau_src.max(1e-30),
            "u_tau changed: {utau_src} vs {utau_dst}"
        );
        assert!(finite, "refined run must stay finite");
        assert_eq!(steps, 4, "step counter carried over");
    }

    #[test]
    fn horizontal_refinement_preserves_the_spectrum() {
        use crate::stats::kinetic_energy;
        let coarse = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let fine = Params::channel(32, 25, 48, 80.0).with_dt(1e-3);
        let out = mpi::run(1, move |world| {
            let mut src = ChannelDns::new(world.dup(), coarse.clone());
            src.set_laminar(0.5);
            src.add_perturbation(0.3, 71);
            for _ in 0..2 {
                src.step();
            }
            let e_src = kinetic_energy(&src);
            let mut dst = ChannelDns::new(world, fine.clone());
            transfer(&src, &mut dst);
            let e_dst = kinetic_energy(&dst);
            dst.step();
            let e_after = kinetic_energy(&dst);
            (e_src, e_dst, e_after)
        });
        let (e_src, e_dst, e_after) = out[0];
        // all source modes fit in the finer basis: energy is conserved
        // up to y-resampling error
        assert!(
            (e_src - e_dst).abs() < 1e-8 * e_src,
            "energy changed: {e_src} vs {e_dst}"
        );
        assert!(e_after.is_finite() && e_after > 0.0);
    }

    #[test]
    fn coarsening_truncates_high_modes_only() {
        let fine = Params::channel(32, 25, 32, 80.0).with_dt(1e-3);
        let coarse = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let ok = mpi::run(1, move |world| {
            let mut src = ChannelDns::new(world.dup(), fine.clone());
            src.set_laminar(0.5);
            src.add_perturbation(0.3, 73);
            for _ in 0..2 {
                src.step();
            }
            let mut dst = ChannelDns::new(world, coarse.clone());
            transfer(&src, &mut dst);
            // the retained low modes agree: compare mode (1, +1) u-line
            // at a midpoint via the spline evaluation
            let find = |dns: &ChannelDns, kx: usize, kz: i64| -> crate::C64 {
                for m in 0..dns.local_modes() {
                    let (ikx, ikz, _) = dns.mode_wavenumbers(m);
                    let a = dns.params().alpha();
                    let b = dns.params().beta();
                    if (ikx.im - a * kx as f64).abs() < 1e-12
                        && (ikz.im - b * kz as f64).abs() < 1e-12
                        && !dns.is_nyquist(m)
                    {
                        let r = dns.line_range(m);
                        let line = &dns.state().u()[r];
                        let re: Vec<f64> = line.iter().map(|c| c.re).collect();
                        let im: Vec<f64> = line.iter().map(|c| c.im).collect();
                        return crate::C64::new(
                            dns.ops().basis().eval(&re, 0.37),
                            dns.ops().basis().eval(&im, 0.37),
                        );
                    }
                }
                panic!("mode not found");
            };
            let a = find(&src, 1, 1);
            let b = find(&dst, 1, 1);
            (a - b).norm() < 1e-10 * (1.0 + a.norm())
        });
        assert!(ok[0]);
    }

    #[test]
    #[should_panic(expected = "only the wall-normal grid may change")]
    fn horizontal_mismatch_is_rejected() {
        let a = Params::channel(16, 25, 16, 80.0);
        let b = Params::channel(32, 25, 16, 80.0);
        mpi::run(1, move |world| {
            let src = ChannelDns::new(world.dup(), a.clone());
            let mut dst = ChannelDns::new(world, b.clone());
            transfer_y(&src, &mut dst);
        });
    }
}
