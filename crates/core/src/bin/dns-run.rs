//! Production-style command-line driver for the channel DNS.
//!
//! Run `dns-run --help` for the full flag reference. Typical use:
//!
//! ```text
//! dns-run --nx 32 --ny 65 --nz 32 --steps 1000 --stats-every 100
//! dns-run --steps 20 --trace target/trace.json   # Perfetto timeline
//! dns-run --spec campaign.json --out target/run7 # serialized RunSpec
//! ```
//!
//! Runs the simulation, prints live statistics, writes profile/spectra
//! CSVs and (optionally) checkpoints and a Chrome trace of the run.
//!
//! The binary is a thin front end over [`dns_core::run`]: flags build a
//! [`RunSpec`] + [`RunConfig`], a [`CliObserver`] hooks the engine's
//! step loop for live statistics and data products, and
//! [`dns_core::run::execute`] drives the supervised RK3 loop — the same
//! engine the `dns-server` campaign scheduler runs jobs through.
//!
//! With `--checkpoint-every N --max-restarts K` an injected (or real)
//! rank crash is caught, the world is relaunched, and the run resumes
//! from the last committed checkpoint manifest. `--crash-at-step S`
//! injects a deterministic crash for chaos demos:
//!
//! ```text
//! dns-run --steps 12 --checkpoint-every 4 --max-restarts 2 \
//!         --crash-at-step 6 --recovery-log target/recovery.json
//! ```

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::Arc;

use dns_core::health::MonitorConfig;
use dns_core::run::{
    execute, InitialCondition, ResumePolicy, RunConfig, RunControl, RunObserver, RunSpec,
    RunStatus, RunSummary, StepCtx,
};
use dns_core::solver::ChannelDns;
use dns_core::stats::{profiles, RunningStats};
use dns_core::{io, spectra, Forcing, Params};
use dns_health::{SentinelConfig, StragglerConfig};
use dns_minimpi::FaultPlan;
use dns_resilience::events_to_json;
use dns_telemetry as telemetry;

struct Args {
    params: Params,
    steps: usize,
    stats_every: usize,
    stats_sample_every: usize,
    stats_warmup: usize,
    ckpt_every: usize,
    ckpt: Option<PathBuf>,
    resume: Option<PathBuf>,
    out: PathBuf,
    ic: InitialCondition,
    trace: Option<PathBuf>,
    metrics_every: usize,
    max_restarts: usize,
    crash_at_step: Option<u64>,
    crash_rank: usize,
    recovery_log: Option<PathBuf>,
    health_log: Option<PathBuf>,
    health_every: u64,
    straggler_factor: f64,
    straggler_steps: u32,
    slow_rank: Option<usize>,
    slow_ms: u64,
}

/// One command-line flag: name, value placeholder (`None` for flags that
/// take no value), and help text. `--help` is generated from this table,
/// so the usage message can't drift from what the parser accepts.
struct Flag {
    name: &'static str,
    value: Option<&'static str>,
    help: &'static str,
}

const FLAGS: &[Flag] = &[
    Flag {
        name: "--spec",
        value: Some("FILE.json"),
        help: "load a serialized run spec (params, steps, ic); later flags override",
    },
    Flag {
        name: "--nx",
        value: Some("N"),
        help: "streamwise solution modes (default 32)",
    },
    Flag {
        name: "--ny",
        value: Some("N"),
        help: "wall-normal B-spline points (default 65)",
    },
    Flag {
        name: "--nz",
        value: Some("N"),
        help: "spanwise solution modes (default 32)",
    },
    Flag {
        name: "--re",
        value: Some("RE"),
        help: "target friction Reynolds number (default 180)",
    },
    Flag {
        name: "--lx",
        value: Some("L"),
        help: "streamwise box length / pi (default 2)",
    },
    Flag {
        name: "--lz",
        value: Some("L"),
        help: "spanwise box length / pi (default 0.8)",
    },
    Flag {
        name: "--threads",
        value: Some("N"),
        help: "on-node worker threads for the transform line loops (default 1)",
    },
    Flag {
        name: "--dt",
        value: Some("DT"),
        help: "timestep (default 5e-4)",
    },
    Flag {
        name: "--stretch",
        value: Some("S"),
        help: "tanh grid stretching factor (default 1.9)",
    },
    Flag {
        name: "--steps",
        value: Some("N"),
        help: "timesteps to run (default 1000)",
    },
    Flag {
        name: "--stats-every",
        value: Some("N"),
        help: "print running statistics every N steps (default 100)",
    },
    Flag {
        name: "--stats-sample-every",
        value: Some("N"),
        help: "accumulate checkpointed time-averaged turbulence statistics every N \
               steps (default off; survives --resume and crash recovery bit-exactly)",
    },
    Flag {
        name: "--stats-warmup",
        value: Some("S"),
        help: "steps to discard before the first statistics sample (default 0, \
               only with --stats-sample-every)",
    },
    Flag {
        name: "--checkpoint-every",
        value: Some("N"),
        help: "write a checkpoint every N steps (default off)",
    },
    Flag {
        name: "--ckpt",
        value: Some("STEM"),
        help: "checkpoint file stem (default OUT/state)",
    },
    Flag {
        name: "--resume",
        value: Some("STEM"),
        help: "resume from a checkpoint stem",
    },
    Flag {
        name: "--out",
        value: Some("DIR"),
        help: "output directory (default target/channel-dns)",
    },
    Flag {
        name: "--flux",
        value: Some("BULK"),
        help: "constant-mass-flux forcing at the given bulk velocity",
    },
    Flag {
        name: "--gradient",
        value: Some("G"),
        help: "constant-pressure-gradient forcing",
    },
    Flag {
        name: "--turbulent-ic",
        value: Some("AMP"),
        help: "perturbed turbulent initial condition of amplitude AMP (default 0.5)",
    },
    Flag {
        name: "--laminar-ic",
        value: None,
        help: "start from the laminar profile instead",
    },
    Flag {
        name: "--no-batched",
        value: None,
        help: "per-mode scalar wall-normal solves instead of batched panels (oracle path)",
    },
    Flag {
        name: "--pipeline",
        value: Some("K"),
        help: "overlap depth of the fused x-stage transposes (0 = blocking; default 4)",
    },
    Flag {
        name: "--grid",
        value: Some("PAxPB"),
        help: "process grid, e.g. 2x2 (default 1x1; ranks are threads)",
    },
    Flag {
        name: "--max-restarts",
        value: Some("K"),
        help: "relaunch after rank crashes up to K times, resuming from the last checkpoint manifest (default 0)",
    },
    Flag {
        name: "--crash-at-step",
        value: Some("S"),
        help: "chaos demo: crash a rank after completing step S (first launch only)",
    },
    Flag {
        name: "--crash-rank",
        value: Some("R"),
        help: "world rank that --crash-at-step kills (default 0)",
    },
    Flag {
        name: "--recovery-log",
        value: Some("FILE.json"),
        help: "write the supervisor's recovery-event timeline as JSON",
    },
    Flag {
        name: "--trace",
        value: Some("FILE.json"),
        help: "write a Chrome trace-event timeline of the run (open in Perfetto)",
    },
    Flag {
        name: "--health-log",
        value: Some("FILE.jsonl"),
        help: "enable run-health monitoring and write the flight recorder here (render with dns-report)",
    },
    Flag {
        name: "--health-every",
        value: Some("N"),
        help: "evaluate the physics sentinels every N steps (default 1; 0 disables sentinels)",
    },
    Flag {
        name: "--straggler-factor",
        value: Some("F"),
        help: "flag a rank whose busy time exceeds F x the median (default 1.5)",
    },
    Flag {
        name: "--straggler-steps",
        value: Some("K"),
        help: "consecutive slow steps before a rank is flagged (default 3)",
    },
    Flag {
        name: "--slow-rank",
        value: Some("R"),
        help: "chaos demo: periodically delay world rank R's transport ops (first launch only)",
    },
    Flag {
        name: "--slow-ms",
        value: Some("MS"),
        help: "delay injected per slowed transport op of --slow-rank (default 2)",
    },
    Flag {
        name: "--metrics-every",
        value: Some("N"),
        help: "print a telemetry phase/counter report every N steps",
    },
    Flag {
        name: "--help",
        value: None,
        help: "print this help and exit",
    },
];

fn usage() -> String {
    let mut out = String::from(
        "dns-run: spectral DNS of turbulent channel flow (Kim-Moin-Moser box by default)\n\n\
         usage: dns-run [flags]\n\nflags:\n",
    );
    for f in FLAGS {
        let left = match f.value {
            Some(v) => format!("{} {v}", f.name),
            None => f.name.to_string(),
        };
        out.push_str(&format!("  {left:<24} {}\n", f.help));
    }
    out
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut params = Params::channel(32, 65, 32, 180.0).with_dt(5e-4);
    params.lx = 2.0;
    params.lz = 0.8;
    params.grid_stretch = 1.9;
    let mut args = Args {
        params,
        steps: 1000,
        stats_every: 100,
        stats_sample_every: 0,
        stats_warmup: 0,
        ckpt_every: 0,
        ckpt: None,
        resume: None,
        out: PathBuf::from("target/channel-dns"),
        ic: InitialCondition::Turbulent {
            amplitude: 0.5,
            seed: 2024,
        },
        trace: None,
        metrics_every: 0,
        max_restarts: 0,
        crash_at_step: None,
        crash_rank: 0,
        recovery_log: None,
        health_log: None,
        health_every: 1,
        straggler_factor: 1.5,
        straggler_steps: 3,
        slow_rank: None,
        slow_ms: 2,
    };
    let mut i = 1;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
        v.parse().map_err(|_| format!("{flag}: cannot parse {v:?}"))
    }
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--spec" => {
                let path = take(&mut i)?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("--spec: cannot read {path}: {e}"))?;
                let spec = RunSpec::from_json(&text).map_err(|e| format!("--spec {path}: {e}"))?;
                args.params = spec.params;
                args.steps = spec.steps as usize;
                args.ckpt_every = spec.ckpt_every as usize;
                args.ic = spec.ic;
            }
            "--nx" => args.params.nx = num(&flag, take(&mut i)?)?,
            "--ny" => args.params.ny = num(&flag, take(&mut i)?)?,
            "--nz" => args.params.nz = num(&flag, take(&mut i)?)?,
            "--re" => args.params.nu = 1.0 / num::<f64>(&flag, take(&mut i)?)?,
            "--lx" => args.params.lx = num(&flag, take(&mut i)?)?,
            "--lz" => args.params.lz = num(&flag, take(&mut i)?)?,
            "--dt" => args.params.dt = num(&flag, take(&mut i)?)?,
            "--threads" => args.params.fft_threads = num::<usize>(&flag, take(&mut i)?)?.max(1),
            "--stretch" => args.params.grid_stretch = num(&flag, take(&mut i)?)?,
            "--steps" => args.steps = num(&flag, take(&mut i)?)?,
            "--stats-every" => args.stats_every = num(&flag, take(&mut i)?)?,
            "--stats-sample-every" => args.stats_sample_every = num(&flag, take(&mut i)?)?,
            "--stats-warmup" => args.stats_warmup = num(&flag, take(&mut i)?)?,
            "--checkpoint-every" => args.ckpt_every = num(&flag, take(&mut i)?)?,
            "--ckpt" => args.ckpt = Some(PathBuf::from(take(&mut i)?)),
            "--resume" => args.resume = Some(PathBuf::from(take(&mut i)?)),
            "--out" => args.out = PathBuf::from(take(&mut i)?),
            "--flux" => {
                args.params.forcing = Forcing::ConstantMassFlux {
                    bulk: num(&flag, take(&mut i)?)?,
                }
            }
            "--gradient" => {
                args.params.forcing = Forcing::PressureGradient(num(&flag, take(&mut i)?)?)
            }
            "--turbulent-ic" => {
                args.ic = InitialCondition::Turbulent {
                    amplitude: num(&flag, take(&mut i)?)?,
                    seed: 2024,
                }
            }
            "--laminar-ic" => args.ic = InitialCondition::Laminar { scale: 1.0 },
            "--no-batched" => args.params.batched = false,
            "--pipeline" => args.params.pipeline = num(&flag, take(&mut i)?)?,
            "--grid" => {
                let v = take(&mut i)?;
                let (pa, pb) = v
                    .split_once('x')
                    .ok_or_else(|| format!("--grid: expected PAxPB, got {v:?}"))?;
                args.params.pa = num(&flag, pa.to_string())?;
                args.params.pb = num(&flag, pb.to_string())?;
            }
            "--max-restarts" => args.max_restarts = num(&flag, take(&mut i)?)?,
            "--crash-at-step" => args.crash_at_step = Some(num(&flag, take(&mut i)?)?),
            "--crash-rank" => args.crash_rank = num(&flag, take(&mut i)?)?,
            "--recovery-log" => args.recovery_log = Some(PathBuf::from(take(&mut i)?)),
            "--trace" => args.trace = Some(PathBuf::from(take(&mut i)?)),
            "--health-log" => args.health_log = Some(PathBuf::from(take(&mut i)?)),
            "--health-every" => args.health_every = num(&flag, take(&mut i)?)?,
            "--straggler-factor" => args.straggler_factor = num(&flag, take(&mut i)?)?,
            "--straggler-steps" => args.straggler_steps = num(&flag, take(&mut i)?)?,
            "--slow-rank" => args.slow_rank = Some(num(&flag, take(&mut i)?)?),
            "--slow-ms" => args.slow_ms = num(&flag, take(&mut i)?)?,
            "--metrics-every" => args.metrics_every = num(&flag, take(&mut i)?)?,
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    if args.stats_every == 0 {
        return Err("--stats-every must be positive".into());
    }
    if args.crash_rank >= args.params.pa * args.params.pb {
        return Err(format!(
            "--crash-rank {} is outside the {}x{} grid",
            args.crash_rank, args.params.pa, args.params.pb
        ));
    }
    if let Some(r) = args.slow_rank {
        if r >= args.params.pa * args.params.pb {
            return Err(format!(
                "--slow-rank {r} is outside the {}x{} grid",
                args.params.pa, args.params.pb
            ));
        }
    }
    if args.straggler_factor <= 1.0 {
        return Err("--straggler-factor must be > 1".into());
    }
    if args.straggler_steps == 0 {
        return Err("--straggler-steps must be positive".into());
    }
    Ok(args)
}

thread_local! {
    /// Per-rank running mean of the wall statistics, exactly as the old
    /// monolithic driver kept one `RunningStats` per rank body. Rank
    /// threads are distinct, so thread-local storage gives each rank its
    /// own accumulator through the shared observer.
    static ACC: RefCell<RunningStats> = RefCell::new(RunningStats::new());
}

/// The engine hooks that make `dns-run` feel like `dns-run`: live
/// statistics lines, windowed telemetry reports, and the final
/// profile/spectra/slice data products. Runs on every rank; printing is
/// root-gated.
struct CliObserver {
    stats_every: u64,
    metrics_every: u64,
    /// With `--trace` the telemetry registry must keep the whole run, so
    /// windowed reports become cumulative instead of flush-and-reset.
    cumulative_metrics: bool,
    out: PathBuf,
}

impl RunObserver for CliObserver {
    fn on_start(&self, dns: &ChannelDns, resumed_from: Option<u64>, attempt: usize) {
        // reset the per-rank print-cadence averager only on a *fresh*
        // start: a resumed attempt keeps whatever this thread already
        // accumulated. (The checkpointed engine accumulator behind
        // --stats-sample-every is the authoritative cross-restart
        // average; this one only backs the final CSV fallback.)
        if resumed_from.is_none() {
            ACC.with_borrow_mut(|acc| *acc = RunningStats::new());
        }
        let root = dns.pfft().comm_a().rank() == 0 && dns.pfft().comm_b().rank() == 0;
        if let Some(step) = resumed_from {
            if root {
                println!(
                    "resumed from step {step} (t = {:.3}){}",
                    dns.state().time,
                    if attempt > 0 {
                        format!(" after crash, attempt {}", attempt + 1)
                    } else {
                        String::new()
                    }
                );
            }
        }
        let cfl = dns.cfl();
        if root {
            println!("initial CFL = {cfl:.3}");
        }
    }

    fn on_step(&self, dns: &ChannelDns, ctx: StepCtx) {
        if ctx.step.is_multiple_of(self.stats_every) {
            let p = profiles(dns);
            ACC.with_borrow_mut(|acc| acc.add(&p));
            let cfl = dns.cfl();
            if ctx.root {
                println!(
                    "step {:6}  t = {:7.3}  u_tau = {:.3}  Re_tau = {:6.1}  bulk = {:6.2}  CFL = {cfl:.2}",
                    ctx.step,
                    dns.state().time,
                    p.u_tau,
                    p.re_tau,
                    p.bulk_velocity,
                );
            }
        }
        if ctx.root {
            if let Some((w0, w1)) =
                dns_health::metrics_window(ctx.step, self.metrics_every, ctx.first_step)
            {
                if !self.cumulative_metrics {
                    // windowed report: flush this rank's buffers, print,
                    // and clear so each report covers only its own window
                    // (clipped at the resume point on a restarted run).
                    // With --trace the registry must keep the whole run,
                    // so the reports are cumulative instead.
                    telemetry::flush_thread();
                    println!("\n-- telemetry, steps {w0}..{w1} --");
                    print!("{}", telemetry::snapshot().phase_table());
                    telemetry::reset();
                } else {
                    telemetry::flush_thread();
                    println!("\n-- telemetry, steps 1..{w1} (cumulative) --");
                    print!("{}", telemetry::snapshot().phase_table());
                }
            }
        }
    }

    fn on_finish(&self, dns: &ChannelDns, summary: RunSummary) {
        if summary.root && summary.steps_ran > 0 {
            println!(
                "\n{} steps in {:.1} s ({:.0} ms/step)",
                summary.steps_ran,
                summary.wall_s,
                summary.wall_s / summary.steps_ran as f64 * 1e3
            );
        }
        // final data products; precedence for the profile CSV: the
        // checkpointed engine accumulator (restart-proof time average),
        // then the print-cadence running mean, then one instantaneous
        // snapshot. The fallbacks are collective, and every rank took
        // the same stats steps, so all ranks agree on which branch runs
        let p = dns.stats().and_then(|acc| acc.mean()).or_else(|| {
            ACC.with_borrow(|acc| {
                if acc.count() > 0 {
                    Some(acc.mean())
                } else {
                    None
                }
            })
        });
        let p = p.unwrap_or_else(|| profiles(dns));
        let sp = spectra::spectra(dns);
        let phys = io::gather_physical(dns, dns.state().u());
        if summary.root {
            let yp = p.y_plus();
            let up = p.u_plus();
            io::write_csv(
                &self.out.join("profiles.csv"),
                &[
                    ("y", &p.y[..]),
                    ("y_plus", &yp[..]),
                    ("u_mean", &p.u_mean[..]),
                    ("u_plus", &up[..]),
                    ("uu", &p.uu[..]),
                    ("vv", &p.vv[..]),
                    ("ww", &p.ww[..]),
                    ("uv", &p.uv[..]),
                ],
            )
            .expect("write profiles");
            let kx: Vec<f64> = sp.kx.iter().map(|&k| k as f64).collect();
            io::write_csv(
                &self.out.join("spectra_kx.csv"),
                &[
                    ("kx", &kx[..]),
                    ("euu", &sp.euu_kx[..]),
                    ("evv", &sp.evv_kx[..]),
                    ("eww", &sp.eww_kx[..]),
                ],
            )
            .expect("write spectra");
        }
        if let Some(f) = phys {
            let (w, h, slice) = f.slice_xy(f.nz / 2);
            io::write_pgm(&self.out.join("u_slice.pgm"), w, h, &slice).expect("write slice");
        }
        if summary.root {
            println!(
                "wrote {}/profiles.csv, spectra_kx.csv, u_slice.pgm",
                self.out.display()
            );
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let a = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dns-run: {e}\n(run dns-run --help for the flag reference)");
            std::process::exit(2);
        }
    };
    a.params.validate();
    if let Err(e) = std::fs::create_dir_all(&a.out) {
        eprintln!(
            "dns-run: cannot create output directory {}: {e}",
            a.out.display()
        );
        std::process::exit(1);
    }
    if a.trace.is_some() || a.metrics_every > 0 {
        telemetry::set_level(telemetry::Level::Phases);
    }
    println!(
        "channel DNS: {} x {} x {} modes, box {:.2} x 2 x {:.2}, Re_tau target {:.0}, dt {}",
        a.params.nx,
        a.params.ny,
        a.params.nz,
        a.params.lx,
        a.params.lz,
        1.0 / a.params.nu,
        a.params.dt
    );
    let mut crash_plan = match a.crash_at_step {
        Some(step) => FaultPlan::none().crash_at_step(a.crash_rank, step),
        None => FaultPlan::none(),
    };
    if let Some(r) = a.slow_rank {
        // a persistent one-rank slowdown: every 32nd transport op on the
        // victim sleeps, which the health monitor must attribute to that
        // rank's busy time and flag as a straggler. The plan materializes
        // its events, so budget enough for the whole run (64 delayed ops
        // per step is far above the real op rate at stride 32) without
        // letting a huge --steps allocate unboundedly.
        let count = (a.steps as u64).saturating_mul(64).min(1_000_000);
        crash_plan =
            crash_plan.delay_every(r, 0, 32, count, std::time::Duration::from_millis(a.slow_ms));
    }

    let spec = RunSpec {
        name: "dns-run".into(),
        params: a.params.clone(),
        steps: a.steps as u64,
        ckpt_every: a.ckpt_every as u64,
        ic: a.ic,
    };
    let cfg = RunConfig {
        ckpt_stem: a.ckpt.clone().unwrap_or_else(|| a.out.join("state")),
        resume: match &a.resume {
            Some(stem) => ResumePolicy::Require(stem.clone()),
            None => ResumePolicy::Fresh,
        },
        final_checkpoint: a.ckpt_every > 0,
        max_restarts: a.max_restarts,
        recv_timeout: dns_minimpi::RECV_TIMEOUT,
        health: a.health_log.as_ref().map(|log| MonitorConfig {
            log: Some(log.clone()),
            sentinel_every: a.health_every,
            straggler: StragglerConfig {
                factor: a.straggler_factor,
                consecutive: a.straggler_steps,
            },
            sentinels: SentinelConfig::default(),
        }),
        health_attempt_base: 0,
        stats: (a.stats_sample_every > 0).then_some(dns_core::stats::StatsConfig {
            every: a.stats_sample_every as u64,
            warmup: a.stats_warmup as u64,
        }),
    };
    let observer = Arc::new(CliObserver {
        stats_every: a.stats_every as u64,
        metrics_every: a.metrics_every as u64,
        cumulative_metrics: a.trace.is_some(),
        out: a.out.clone(),
    });
    let outcome = execute(
        &spec,
        &cfg,
        Arc::new(RunControl::new()),
        observer,
        // chaos only on the first launch; restarts run clean
        move |attempt| {
            if attempt == 0 {
                crash_plan.clone()
            } else {
                FaultPlan::none()
            }
        },
    );

    if outcome.restarts > 0 {
        println!(
            "supervisor: {} restart(s) issued, run {}",
            outcome.restarts,
            if outcome.status == RunStatus::Done {
                "recovered"
            } else {
                "abandoned"
            }
        );
    }
    if let Some(path) = &a.recovery_log {
        if let Err(e) = std::fs::write(path, events_to_json(&outcome.events)) {
            eprintln!("dns-run: cannot write recovery log {}: {e}", path.display());
        } else {
            println!("wrote recovery log {}", path.display());
        }
    }
    if let Some(path) = &a.health_log {
        // the engine has already folded the supervisor's recovery
        // timeline into the JSONL artifact; report where it went
        if let Some((step_h, _phases)) = dns_health::step_histograms() {
            println!(
                "step latency (all ranks, n = {}): p50 {}  p90 {}  p99 {}  max {}",
                step_h.count(),
                telemetry::fmt_seconds(step_h.quantile(0.5)),
                telemetry::fmt_seconds(step_h.quantile(0.9)),
                telemetry::fmt_seconds(step_h.quantile(0.99)),
                telemetry::fmt_seconds(step_h.max()),
            );
        }
        println!(
            "wrote health log {} (render it with `dns-report {}`)",
            path.display(),
            path.display()
        );
    }
    if outcome.status != RunStatus::Done {
        eprintln!(
            "dns-run: run failed after {} restart(s); see recovery events",
            outcome.restarts
        );
        std::process::exit(1);
    }
    // export after the rank threads have flushed (their RankScopes drop
    // when the supervised world winds down), so the trace holds the
    // complete timeline
    if let Some(path) = &a.trace {
        let snap = telemetry::snapshot();
        if let Err(e) = std::fs::write(path, snap.chrome_trace()) {
            eprintln!("dns-run: cannot write trace {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("\ntelemetry summary");
        print!("{}", snap.phase_table());
        println!(
            "wrote {} ({} spans; load it in https://ui.perfetto.dev)",
            path.display(),
            snap.span_count()
        );
    }
}

#[cfg(test)]
mod flag_drift {
    //! The `--help` text is generated from [`FLAGS`], so help and table
    //! cannot drift — but the parser's `match` arms still could. These
    //! tests pin all three views of the flag set (parser, table/help,
    //! README examples) to each other.
    use super::{usage, FLAGS};

    const SRC: &str = include_str!("dns-run.rs");
    const README: &str = include_str!("../../../../README.md");

    /// Flags the parser actually matches: string literals opening a
    /// `match` arm (`"--foo" => ...` or `"--help" | "-h" => ...`).
    fn parser_arm_flags() -> Vec<&'static str> {
        let mut v = Vec::new();
        for line in SRC.lines() {
            let t = line.trim_start();
            if !t.starts_with("\"--") || !t.contains("=>") {
                continue;
            }
            let rest = &t[1..];
            if let Some(end) = rest.find('"') {
                v.push(&rest[..end]);
            }
        }
        v
    }

    /// Flags passed to `dns-run` in the README's command examples
    /// (joining backslash-continued shell lines first).
    fn readme_dns_run_flags() -> Vec<String> {
        let mut commands = Vec::new();
        let mut cur = String::new();
        for line in README.lines() {
            let t = line.trim();
            if let Some(stem) = t.strip_suffix('\\') {
                cur.push_str(stem);
                cur.push(' ');
            } else {
                cur.push_str(t);
                commands.push(std::mem::take(&mut cur));
            }
        }
        let mut flags = Vec::new();
        for cmd in commands {
            if !cmd.contains("--bin dns-run") {
                continue;
            }
            let Some((_, tail)) = cmd.split_once(" -- ") else {
                continue;
            };
            for tok in tail.split_whitespace() {
                if tok.starts_with("--") {
                    flags.push(tok.to_string());
                }
            }
        }
        flags
    }

    #[test]
    fn every_parsed_flag_is_documented_in_help() {
        let arms = parser_arm_flags();
        assert!(arms.len() >= 30, "arm scan looks broken: {arms:?}");
        let help = usage();
        for flag in &arms {
            assert!(
                FLAGS.iter().any(|f| f.name == *flag),
                "parser accepts {flag} but the FLAGS table does not list it"
            );
            assert!(
                help.contains(&format!("{flag} ")) || help.contains(&format!("{flag}\n")),
                "parser accepts {flag} but --help does not mention it"
            );
        }
    }

    #[test]
    fn every_documented_flag_has_a_parser_arm() {
        let arms = parser_arm_flags();
        for f in FLAGS {
            assert!(
                arms.contains(&f.name),
                "--help documents {} but the parser has no arm for it",
                f.name
            );
        }
    }

    #[test]
    fn stats_flags_are_wired() {
        // the checkpointed-statistics flags must stay in all three views
        // (parser, FLAGS/help, and this scan) — they are the CLI surface
        // of the science-gate accumulator
        let arms = parser_arm_flags();
        for flag in ["--stats-every", "--stats-sample-every", "--stats-warmup"] {
            assert!(arms.contains(&flag), "no parser arm for {flag}");
            assert!(
                FLAGS.iter().any(|f| f.name == flag),
                "FLAGS table lost {flag}"
            );
        }
    }

    #[test]
    fn readme_examples_only_use_real_flags() {
        let flags = readme_dns_run_flags();
        assert!(
            !flags.is_empty(),
            "README no longer shows any dns-run invocations — update this scan"
        );
        for flag in &flags {
            assert!(
                FLAGS.iter().any(|f| f.name == flag),
                "README example passes {flag}, which dns-run does not accept"
            );
        }
    }
}
