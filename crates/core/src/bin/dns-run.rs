//! Production-style command-line driver for the channel DNS.
//!
//! ```text
//! dns-run [--nx N] [--ny N] [--nz N] [--re RE_TAU] [--lx L] [--lz L]
//!             [--dt DT] [--steps N] [--stretch S]
//!             [--flux BULK | --gradient G]
//!             [--stats-every N] [--checkpoint-every N] [--ckpt STEM]
//!             [--resume STEM] [--out DIR] [--turbulent-ic AMP]
//! ```
//!
//! Runs the simulation, prints live statistics, writes profile/spectra
//! CSVs and (optionally) checkpoints.

use std::path::PathBuf;

use dns_core::stats::{profiles, RunningStats};
use dns_core::{checkpoint, io, run_serial, spectra, Forcing, Params};

struct Args {
    params: Params,
    steps: usize,
    stats_every: usize,
    ckpt_every: usize,
    ckpt: Option<PathBuf>,
    resume: Option<PathBuf>,
    out: PathBuf,
    turb_ic: Option<f64>,
}

fn parse_args() -> Args {
    let mut params = Params::channel(32, 65, 32, 180.0).with_dt(5e-4);
    params.lx = 2.0;
    params.lz = 0.8;
    params.grid_stretch = 1.9;
    let mut args = Args {
        params,
        steps: 1000,
        stats_every: 100,
        ckpt_every: 0,
        ckpt: None,
        resume: None,
        out: PathBuf::from("target/channel-dns"),
        turb_ic: Some(0.5),
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let take = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| panic!("{} needs a value", argv[*i - 1]))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--nx" => args.params.nx = take(&mut i).parse().expect("--nx"),
            "--ny" => args.params.ny = take(&mut i).parse().expect("--ny"),
            "--nz" => args.params.nz = take(&mut i).parse().expect("--nz"),
            "--re" => args.params.nu = 1.0 / take(&mut i).parse::<f64>().expect("--re"),
            "--lx" => args.params.lx = take(&mut i).parse().expect("--lx"),
            "--lz" => args.params.lz = take(&mut i).parse().expect("--lz"),
            "--dt" => args.params.dt = take(&mut i).parse().expect("--dt"),
            "--stretch" => args.params.grid_stretch = take(&mut i).parse().expect("--stretch"),
            "--steps" => args.steps = take(&mut i).parse().expect("--steps"),
            "--stats-every" => args.stats_every = take(&mut i).parse().expect("--stats-every"),
            "--checkpoint-every" => args.ckpt_every = take(&mut i).parse().expect("--checkpoint-every"),
            "--ckpt" => args.ckpt = Some(PathBuf::from(take(&mut i))),
            "--resume" => args.resume = Some(PathBuf::from(take(&mut i))),
            "--out" => args.out = PathBuf::from(take(&mut i)),
            "--flux" => {
                args.params.forcing = Forcing::ConstantMassFlux {
                    bulk: take(&mut i).parse().expect("--flux"),
                }
            }
            "--gradient" => {
                args.params.forcing =
                    Forcing::PressureGradient(take(&mut i).parse().expect("--gradient"))
            }
            "--turbulent-ic" => args.turb_ic = Some(take(&mut i).parse().expect("--turbulent-ic")),
            "--laminar-ic" => args.turb_ic = None,
            "--help" | "-h" => {
                println!("see the module docs at the top of dns-run.rs for usage");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    args
}

fn main() {
    let a = parse_args();
    a.params.validate();
    std::fs::create_dir_all(&a.out).expect("create output directory");
    println!(
        "channel DNS: {} x {} x {} modes, box {:.2} x 2 x {:.2}, Re_tau target {:.0}, dt {}",
        a.params.nx,
        a.params.ny,
        a.params.nz,
        a.params.lx,
        a.params.lz,
        1.0 / a.params.nu,
        a.params.dt
    );
    let params = a.params.clone();
    run_serial(params, move |dns| {
        if let Some(stem) = &a.resume {
            checkpoint::load(dns, stem).expect("load checkpoint");
            println!(
                "resumed from step {} (t = {:.3})",
                dns.state().steps,
                dns.state().time
            );
        } else {
            match a.turb_ic {
                Some(amp) => {
                    dns.set_turbulent_mean(1.0);
                    dns.add_perturbation(amp, 2024);
                }
                None => dns.set_laminar(1.0),
            }
        }
        println!("initial CFL = {:.3}", dns.cfl());
        let mut acc = RunningStats::new();
        let t0 = std::time::Instant::now();
        for s in 1..=a.steps {
            dns.step();
            if s % a.stats_every == 0 {
                let p = profiles(dns);
                acc.add(&p);
                println!(
                    "step {s:6}  t = {:7.3}  u_tau = {:.3}  Re_tau = {:6.1}  bulk = {:6.2}  CFL = {:.2}",
                    dns.state().time,
                    p.u_tau,
                    p.re_tau,
                    p.bulk_velocity,
                    dns.cfl(),
                );
            }
            if a.ckpt_every > 0 && s % a.ckpt_every == 0 {
                let stem = a.ckpt.clone().unwrap_or_else(|| a.out.join("state"));
                checkpoint::save(dns, &stem).expect("write checkpoint");
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "\n{} steps in {:.1} s ({:.0} ms/step)",
            a.steps,
            wall,
            wall / a.steps as f64 * 1e3
        );

        // final data products
        let p = if acc.count() > 0 { acc.mean() } else { profiles(dns) };
        let yp = p.y_plus();
        let up = p.u_plus();
        io::write_csv(
            &a.out.join("profiles.csv"),
            &[
                ("y", &p.y[..]),
                ("y_plus", &yp[..]),
                ("u_mean", &p.u_mean[..]),
                ("u_plus", &up[..]),
                ("uu", &p.uu[..]),
                ("vv", &p.vv[..]),
                ("ww", &p.ww[..]),
                ("uv", &p.uv[..]),
            ],
        )
        .expect("write profiles");
        let sp = spectra::spectra(dns);
        let kx: Vec<f64> = sp.kx.iter().map(|&k| k as f64).collect();
        io::write_csv(
            &a.out.join("spectra_kx.csv"),
            &[
                ("kx", &kx[..]),
                ("euu", &sp.euu_kx[..]),
                ("evv", &sp.evv_kx[..]),
                ("eww", &sp.eww_kx[..]),
            ],
        )
        .expect("write spectra");
        if let Some(f) = io::gather_physical(dns, dns.state().u()) {
            let (w, h, slice) = f.slice_xy(f.nz / 2);
            io::write_pgm(&a.out.join("u_slice.pgm"), w, h, &slice).expect("write slice");
        }
        println!("wrote {}/profiles.csv, spectra_kx.csv, u_slice.pgm", a.out.display());
    });
}
