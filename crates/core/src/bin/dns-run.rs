//! Production-style command-line driver for the channel DNS.
//!
//! Run `dns-run --help` for the full flag reference. Typical use:
//!
//! ```text
//! dns-run --nx 32 --ny 65 --nz 32 --steps 1000 --stats-every 100
//! dns-run --steps 20 --trace target/trace.json   # Perfetto timeline
//! ```
//!
//! Runs the simulation, prints live statistics, writes profile/spectra
//! CSVs and (optionally) checkpoints and a Chrome trace of the run.

use std::path::PathBuf;

use dns_core::stats::{profiles, RunningStats};
use dns_core::{checkpoint, io, run_serial, spectra, Forcing, Params};
use dns_telemetry as telemetry;

struct Args {
    params: Params,
    steps: usize,
    stats_every: usize,
    ckpt_every: usize,
    ckpt: Option<PathBuf>,
    resume: Option<PathBuf>,
    out: PathBuf,
    turb_ic: Option<f64>,
    trace: Option<PathBuf>,
    metrics_every: usize,
}

/// One command-line flag: name, value placeholder (`None` for flags that
/// take no value), and help text. `--help` is generated from this table,
/// so the usage message can't drift from what the parser accepts.
struct Flag {
    name: &'static str,
    value: Option<&'static str>,
    help: &'static str,
}

const FLAGS: &[Flag] = &[
    Flag {
        name: "--nx",
        value: Some("N"),
        help: "streamwise solution modes (default 32)",
    },
    Flag {
        name: "--ny",
        value: Some("N"),
        help: "wall-normal B-spline points (default 65)",
    },
    Flag {
        name: "--nz",
        value: Some("N"),
        help: "spanwise solution modes (default 32)",
    },
    Flag {
        name: "--re",
        value: Some("RE"),
        help: "target friction Reynolds number (default 180)",
    },
    Flag {
        name: "--lx",
        value: Some("L"),
        help: "streamwise box length / pi (default 2)",
    },
    Flag {
        name: "--lz",
        value: Some("L"),
        help: "spanwise box length / pi (default 0.8)",
    },
    Flag {
        name: "--threads",
        value: Some("N"),
        help: "on-node worker threads for the transform line loops (default 1)",
    },
    Flag {
        name: "--dt",
        value: Some("DT"),
        help: "timestep (default 5e-4)",
    },
    Flag {
        name: "--stretch",
        value: Some("S"),
        help: "tanh grid stretching factor (default 1.9)",
    },
    Flag {
        name: "--steps",
        value: Some("N"),
        help: "timesteps to run (default 1000)",
    },
    Flag {
        name: "--stats-every",
        value: Some("N"),
        help: "print running statistics every N steps (default 100)",
    },
    Flag {
        name: "--checkpoint-every",
        value: Some("N"),
        help: "write a checkpoint every N steps (default off)",
    },
    Flag {
        name: "--ckpt",
        value: Some("STEM"),
        help: "checkpoint file stem (default OUT/state)",
    },
    Flag {
        name: "--resume",
        value: Some("STEM"),
        help: "resume from a checkpoint stem",
    },
    Flag {
        name: "--out",
        value: Some("DIR"),
        help: "output directory (default target/channel-dns)",
    },
    Flag {
        name: "--flux",
        value: Some("BULK"),
        help: "constant-mass-flux forcing at the given bulk velocity",
    },
    Flag {
        name: "--gradient",
        value: Some("G"),
        help: "constant-pressure-gradient forcing",
    },
    Flag {
        name: "--turbulent-ic",
        value: Some("AMP"),
        help: "perturbed turbulent initial condition of amplitude AMP (default 0.5)",
    },
    Flag {
        name: "--laminar-ic",
        value: None,
        help: "start from the laminar profile instead",
    },
    Flag {
        name: "--trace",
        value: Some("FILE.json"),
        help: "write a Chrome trace-event timeline of the run (open in Perfetto)",
    },
    Flag {
        name: "--metrics-every",
        value: Some("N"),
        help: "print a telemetry phase/counter report every N steps",
    },
    Flag {
        name: "--help",
        value: None,
        help: "print this help and exit",
    },
];

fn usage() -> String {
    let mut out = String::from(
        "dns-run: spectral DNS of turbulent channel flow (Kim-Moin-Moser box by default)\n\n\
         usage: dns-run [flags]\n\nflags:\n",
    );
    for f in FLAGS {
        let left = match f.value {
            Some(v) => format!("{} {v}", f.name),
            None => f.name.to_string(),
        };
        out.push_str(&format!("  {left:<24} {}\n", f.help));
    }
    out
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut params = Params::channel(32, 65, 32, 180.0).with_dt(5e-4);
    params.lx = 2.0;
    params.lz = 0.8;
    params.grid_stretch = 1.9;
    let mut args = Args {
        params,
        steps: 1000,
        stats_every: 100,
        ckpt_every: 0,
        ckpt: None,
        resume: None,
        out: PathBuf::from("target/channel-dns"),
        turb_ic: Some(0.5),
        trace: None,
        metrics_every: 0,
    };
    let mut i = 1;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
        v.parse().map_err(|_| format!("{flag}: cannot parse {v:?}"))
    }
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--nx" => args.params.nx = num(&flag, take(&mut i)?)?,
            "--ny" => args.params.ny = num(&flag, take(&mut i)?)?,
            "--nz" => args.params.nz = num(&flag, take(&mut i)?)?,
            "--re" => args.params.nu = 1.0 / num::<f64>(&flag, take(&mut i)?)?,
            "--lx" => args.params.lx = num(&flag, take(&mut i)?)?,
            "--lz" => args.params.lz = num(&flag, take(&mut i)?)?,
            "--dt" => args.params.dt = num(&flag, take(&mut i)?)?,
            "--threads" => args.params.fft_threads = num::<usize>(&flag, take(&mut i)?)?.max(1),
            "--stretch" => args.params.grid_stretch = num(&flag, take(&mut i)?)?,
            "--steps" => args.steps = num(&flag, take(&mut i)?)?,
            "--stats-every" => args.stats_every = num(&flag, take(&mut i)?)?,
            "--checkpoint-every" => args.ckpt_every = num(&flag, take(&mut i)?)?,
            "--ckpt" => args.ckpt = Some(PathBuf::from(take(&mut i)?)),
            "--resume" => args.resume = Some(PathBuf::from(take(&mut i)?)),
            "--out" => args.out = PathBuf::from(take(&mut i)?),
            "--flux" => {
                args.params.forcing = Forcing::ConstantMassFlux {
                    bulk: num(&flag, take(&mut i)?)?,
                }
            }
            "--gradient" => {
                args.params.forcing = Forcing::PressureGradient(num(&flag, take(&mut i)?)?)
            }
            "--turbulent-ic" => args.turb_ic = Some(num(&flag, take(&mut i)?)?),
            "--laminar-ic" => args.turb_ic = None,
            "--trace" => args.trace = Some(PathBuf::from(take(&mut i)?)),
            "--metrics-every" => args.metrics_every = num(&flag, take(&mut i)?)?,
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    if args.stats_every == 0 {
        return Err("--stats-every must be positive".into());
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let a = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dns-run: {e}\n(run dns-run --help for the flag reference)");
            std::process::exit(2);
        }
    };
    a.params.validate();
    if let Err(e) = std::fs::create_dir_all(&a.out) {
        eprintln!(
            "dns-run: cannot create output directory {}: {e}",
            a.out.display()
        );
        std::process::exit(1);
    }
    if a.trace.is_some() || a.metrics_every > 0 {
        telemetry::set_level(telemetry::Level::Phases);
    }
    println!(
        "channel DNS: {} x {} x {} modes, box {:.2} x 2 x {:.2}, Re_tau target {:.0}, dt {}",
        a.params.nx,
        a.params.ny,
        a.params.nz,
        a.params.lx,
        a.params.lz,
        1.0 / a.params.nu,
        a.params.dt
    );
    let params = a.params.clone();
    let trace = run_serial(params, move |dns| {
        if let Some(stem) = &a.resume {
            checkpoint::load(dns, stem).expect("load checkpoint");
            println!(
                "resumed from step {} (t = {:.3})",
                dns.state().steps,
                dns.state().time
            );
        } else {
            match a.turb_ic {
                Some(amp) => {
                    dns.set_turbulent_mean(1.0);
                    dns.add_perturbation(amp, 2024);
                }
                None => dns.set_laminar(1.0),
            }
        }
        println!("initial CFL = {:.3}", dns.cfl());
        let mut acc = RunningStats::new();
        let t0 = std::time::Instant::now();
        for s in 1..=a.steps {
            dns.step();
            if s % a.stats_every == 0 {
                let p = profiles(dns);
                acc.add(&p);
                println!(
                    "step {s:6}  t = {:7.3}  u_tau = {:.3}  Re_tau = {:6.1}  bulk = {:6.2}  CFL = {:.2}",
                    dns.state().time,
                    p.u_tau,
                    p.re_tau,
                    p.bulk_velocity,
                    dns.cfl(),
                );
            }
            if a.metrics_every > 0 && s % a.metrics_every == 0 && a.trace.is_none() {
                // windowed report: flush this rank's buffers, print, and
                // clear so each report covers only its own window. (With
                // --trace the registry must keep the whole run, so the
                // reports are cumulative instead.)
                telemetry::flush_thread();
                println!("\n-- telemetry, steps {}..{s} --", s - a.metrics_every + 1);
                print!("{}", telemetry::snapshot().phase_table());
                telemetry::reset();
            } else if a.metrics_every > 0 && s % a.metrics_every == 0 {
                telemetry::flush_thread();
                println!("\n-- telemetry, steps 1..{s} (cumulative) --");
                print!("{}", telemetry::snapshot().phase_table());
            }
            if a.ckpt_every > 0 && s % a.ckpt_every == 0 {
                let stem = a.ckpt.clone().unwrap_or_else(|| a.out.join("state"));
                checkpoint::save(dns, &stem).expect("write checkpoint");
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "\n{} steps in {:.1} s ({:.0} ms/step)",
            a.steps,
            wall,
            wall / a.steps as f64 * 1e3
        );

        // final data products
        let p = if acc.count() > 0 {
            acc.mean()
        } else {
            profiles(dns)
        };
        let yp = p.y_plus();
        let up = p.u_plus();
        io::write_csv(
            &a.out.join("profiles.csv"),
            &[
                ("y", &p.y[..]),
                ("y_plus", &yp[..]),
                ("u_mean", &p.u_mean[..]),
                ("u_plus", &up[..]),
                ("uu", &p.uu[..]),
                ("vv", &p.vv[..]),
                ("ww", &p.ww[..]),
                ("uv", &p.uv[..]),
            ],
        )
        .expect("write profiles");
        let sp = spectra::spectra(dns);
        let kx: Vec<f64> = sp.kx.iter().map(|&k| k as f64).collect();
        io::write_csv(
            &a.out.join("spectra_kx.csv"),
            &[
                ("kx", &kx[..]),
                ("euu", &sp.euu_kx[..]),
                ("evv", &sp.evv_kx[..]),
                ("eww", &sp.eww_kx[..]),
            ],
        )
        .expect("write spectra");
        if let Some(f) = io::gather_physical(dns, dns.state().u()) {
            let (w, h, slice) = f.slice_xy(f.nz / 2);
            io::write_pgm(&a.out.join("u_slice.pgm"), w, h, &slice).expect("write slice");
        }
        println!(
            "wrote {}/profiles.csv, spectra_kx.csv, u_slice.pgm",
            a.out.display()
        );
        a.trace.clone()
    });
    // export after the rank thread has flushed (its RankScope drops when
    // run_serial returns), so the trace holds the complete timeline
    if let Some(path) = trace {
        let snap = telemetry::snapshot();
        if let Err(e) = std::fs::write(&path, snap.chrome_trace()) {
            eprintln!("dns-run: cannot write trace {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("\ntelemetry summary");
        print!("{}", snap.phase_table());
        println!(
            "wrote {} ({} spans; load it in https://ui.perfetto.dev)",
            path.display(),
            snap.span_count()
        );
    }
}
