//! The reusable run API extracted from `dns-run`'s flag soup: a
//! serializable, validated [`RunSpec`] describing *what* to simulate, a
//! supervised [`execute`] engine that runs it (restore → step loop →
//! checkpoints → data products) under the `dns-resilience` restart
//! supervisor, and a [`RunHandle`] that runs the engine on a background
//! thread with pause / resume / cancel / status control — the primitive
//! the `dns-server` campaign scheduler preempts jobs with.
//!
//! Control is collective: every rank of a run polls the shared
//! [`RunControl`] between steps, but only world rank 0's reading counts —
//! it is broadcast to the other ranks so the whole world takes the same
//! branch on the same step (a rank pausing one step before its peers
//! would deadlock the checkpoint collectives).
//!
//! Pausing writes a v2 checkpoint generation through the existing
//! manifest path and returns; resuming spawns a fresh supervised world
//! that restores from that manifest — bitwise-identically, as the
//! checkpoint format guarantees and `core/tests/run_handle.rs` asserts.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dns_minimpi::{Communicator, FaultPlan};
use dns_resilience::{supervise, RecoveryEvent, SupervisorConfig};

use crate::checkpoint;
use crate::health::{MonitorConfig, StepMonitor};
use crate::params::{Forcing, Params};
use crate::solver::ChannelDns;
use dns_json::Json;

// ---------------------------------------------------------------------------
// RunSpec
// ---------------------------------------------------------------------------

/// How the velocity field is initialised when a run starts from scratch
/// (a resumed run restores its fields from the checkpoint instead).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InitialCondition {
    /// Turbulent mean profile plus a seeded random perturbation.
    Turbulent {
        /// Perturbation amplitude.
        amplitude: f64,
        /// Deterministic perturbation seed.
        seed: u64,
    },
    /// Exact laminar (Poiseuille) equilibrium at the given centreline
    /// scale.
    Laminar {
        /// Profile scale factor.
        scale: f64,
    },
    /// Scaled-down laminar profile plus a seeded perturbation — the
    /// transition recipe the figure harnesses use for the minimal
    /// channel (the excess shear feeds the instability far more
    /// reliably than starting from the turbulent mean; see
    /// `dns-bench::channel_run`). Used by the `dns-validate` science
    /// gate.
    SeededTransition {
        /// Laminar profile scale factor.
        scale: f64,
        /// Perturbation amplitude.
        amplitude: f64,
        /// Deterministic perturbation seed.
        seed: u64,
    },
}

/// A complete, serializable description of one simulation run: the
/// physics and decomposition ([`Params`]), the step budget, the
/// checkpoint cadence, and the initial condition.
///
/// The JSON form embeds a digest of every field (`"hash"`); loading a
/// spec whose digest disagrees with its contents is a typed error, so a
/// corrupted or hand-mangled spec file is rejected before it burns core
/// hours. [`RunSpec::validate`] performs the same consistency checks as
/// [`Params::validate`] but returns typed errors instead of panicking —
/// the campaign server rejects bad submissions, it does not crash.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Display name (free-form; shows up in queue listings).
    pub name: String,
    /// Physics and decomposition.
    pub params: Params,
    /// Total timesteps the run must complete.
    pub steps: u64,
    /// Write a checkpoint generation every N steps (0 = only on pause).
    pub ckpt_every: u64,
    /// How the fields are initialised on a fresh start.
    pub ic: InitialCondition,
}

/// Why a [`RunSpec`] could not be validated or decoded.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The JSON text did not parse.
    Parse(String),
    /// A required field is missing or has the wrong type.
    Field(&'static str),
    /// The embedded digest disagrees with the decoded fields.
    HashMismatch {
        /// Digest stored in the file.
        stored: u64,
        /// Digest recomputed from the decoded fields.
        computed: u64,
    },
    /// A field value is out of range; the message names it.
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "spec does not parse: {e}"),
            SpecError::Field(name) => write!(f, "spec field {name} missing or mistyped"),
            SpecError::HashMismatch { stored, computed } => write!(
                f,
                "spec hash mismatch: file says {stored:016x}, contents hash to {computed:016x}"
            ),
            SpecError::Invalid(m) => write!(f, "invalid spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            name: "run".into(),
            params: Params::channel(32, 65, 32, 180.0).with_dt(5e-4),
            steps: 1000,
            ckpt_every: 0,
            ic: InitialCondition::Turbulent {
                amplitude: 0.5,
                seed: 2024,
            },
        }
    }
}

impl RunSpec {
    /// Cores this run occupies while scheduled: one per rank thread,
    /// times the on-node worker threads each rank drives.
    pub fn cores(&self) -> usize {
        self.params.pa * self.params.pb * self.params.fft_threads.max(1)
    }

    /// Typed validation (the non-panicking sibling of
    /// [`Params::validate`], plus run-level checks).
    pub fn validate(&self) -> Result<(), SpecError> {
        let p = &self.params;
        let bad = |m: String| Err(SpecError::Invalid(m));
        if !p.nx.is_multiple_of(4) || !p.nz.is_multiple_of(4) {
            return bad(format!(
                "nx ({}) and nz ({}) must be multiples of 4",
                p.nx, p.nz
            ));
        }
        if p.spline_order < 4 {
            return bad(format!("spline order {} < 4", p.spline_order));
        }
        if p.ny < p.spline_order + 2 {
            return bad(format!(
                "ny {} too small for spline order {}",
                p.ny, p.spline_order
            ));
        }
        if !(p.nu > 0.0 && p.dt > 0.0 && p.lx > 0.0 && p.lz > 0.0) {
            return bad("nu, dt, lx, lz must all be positive".into());
        }
        if p.pa == 0 || p.pb == 0 {
            return bad(format!("degenerate {}x{} process grid", p.pa, p.pb));
        }
        if self.steps == 0 {
            return bad("steps must be at least 1".into());
        }
        if let InitialCondition::Turbulent { amplitude, .. }
        | InitialCondition::SeededTransition { amplitude, .. } = self.ic
        {
            if !amplitude.is_finite() || amplitude < 0.0 {
                return bad(format!(
                    "perturbation amplitude {amplitude} must be finite and >= 0"
                ));
            }
        }
        Ok(())
    }

    /// Digest of every field, mixed with the same bijective finalizer as
    /// [`Params::state_hash`]. Serialized specs embed it; decoding
    /// verifies it.
    pub fn spec_hash(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            let mut z = h.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let p = &self.params;
        let mut h = 0x4A4F_4253_0000_0000u64; // "JOBS" salt
        for b in self.name.bytes() {
            h = mix(h, b as u64);
        }
        h = mix(h, p.state_hash());
        for v in [p.pa, p.pb, p.fft_threads, p.pipeline] {
            h = mix(h, v as u64);
        }
        h = mix(h, p.batched as u64);
        h = mix(h, self.steps);
        h = mix(h, self.ckpt_every);
        match self.ic {
            InitialCondition::Turbulent { amplitude, seed } => {
                h = mix(h, 1);
                h = mix(h, amplitude.to_bits());
                h = mix(h, seed);
            }
            InitialCondition::Laminar { scale } => {
                h = mix(h, 2);
                h = mix(h, scale.to_bits());
            }
            InitialCondition::SeededTransition {
                scale,
                amplitude,
                seed,
            } => {
                h = mix(h, 3);
                h = mix(h, scale.to_bits());
                h = mix(h, amplitude.to_bits());
                h = mix(h, seed);
            }
        }
        h
    }

    /// Serialize to the canonical JSON form (single line, sorted keys,
    /// digest embedded).
    pub fn to_json(&self) -> String {
        let p = &self.params;
        let forcing = match p.forcing {
            Forcing::PressureGradient(g) => Json::obj()
                .put("kind", Json::str("pressure_gradient"))
                .put("value", Json::Num(g))
                .build(),
            Forcing::ConstantMassFlux { bulk } => Json::obj()
                .put("kind", Json::str("mass_flux"))
                .put("bulk", Json::Num(bulk))
                .build(),
            Forcing::None => Json::obj().put("kind", Json::str("none")).build(),
        };
        let ic = match self.ic {
            InitialCondition::Turbulent { amplitude, seed } => Json::obj()
                .put("kind", Json::str("turbulent"))
                .put("amplitude", Json::Num(amplitude))
                .put("seed", Json::Num(seed as f64))
                .build(),
            InitialCondition::Laminar { scale } => Json::obj()
                .put("kind", Json::str("laminar"))
                .put("scale", Json::Num(scale))
                .build(),
            InitialCondition::SeededTransition {
                scale,
                amplitude,
                seed,
            } => Json::obj()
                .put("kind", Json::str("seeded_transition"))
                .put("scale", Json::Num(scale))
                .put("amplitude", Json::Num(amplitude))
                .put("seed", Json::Num(seed as f64))
                .build(),
        };
        Json::obj()
            .put("kind", Json::str("run_spec"))
            .put("version", Json::num(1))
            .put("name", Json::str(&self.name))
            .put("nx", Json::num(p.nx as u32))
            .put("ny", Json::num(p.ny as u32))
            .put("nz", Json::num(p.nz as u32))
            .put("lx", Json::Num(p.lx))
            .put("lz", Json::Num(p.lz))
            .put("nu", Json::Num(p.nu))
            .put("dt", Json::Num(p.dt))
            .put("spline_order", Json::num(p.spline_order as u32))
            .put("stretch", Json::Num(p.grid_stretch))
            .put("nonlinear", Json::Bool(p.nonlinear))
            .put("forcing", forcing)
            .put("pa", Json::num(p.pa as u32))
            .put("pb", Json::num(p.pb as u32))
            .put("threads", Json::num(p.fft_threads as u32))
            .put("batched", Json::Bool(p.batched))
            .put("pipeline", Json::num(p.pipeline as u32))
            .put("steps", Json::Num(self.steps as f64))
            .put("ckpt_every", Json::Num(self.ckpt_every as f64))
            .put("ic", ic)
            .put("hash", Json::str(format!("{:016x}", self.spec_hash())))
            .build()
            .dump()
    }

    /// Decode a spec from its JSON form, verifying the embedded digest
    /// (a spec without a `"hash"` field — e.g. hand-written — is
    /// accepted) and validating the result.
    pub fn from_json(text: &str) -> Result<RunSpec, SpecError> {
        let v = dns_json::parse(text).map_err(|e| SpecError::Parse(e.to_string()))?;
        fn u(v: &Json, k: &'static str) -> Result<u64, SpecError> {
            v.get(k).and_then(Json::as_u64).ok_or(SpecError::Field(k))
        }
        fn f(v: &Json, k: &'static str) -> Result<f64, SpecError> {
            v.get(k).and_then(Json::as_f64).ok_or(SpecError::Field(k))
        }
        fn b(v: &Json, k: &'static str) -> Result<bool, SpecError> {
            v.get(k).and_then(Json::as_bool).ok_or(SpecError::Field(k))
        }
        fn s<'a>(v: &'a Json, k: &'static str) -> Result<&'a str, SpecError> {
            v.get(k).and_then(Json::as_str).ok_or(SpecError::Field(k))
        }
        if s(&v, "kind")? != "run_spec" {
            return Err(SpecError::Field("kind"));
        }
        let forcing_v = v.get("forcing").ok_or(SpecError::Field("forcing"))?;
        let forcing = match s(forcing_v, "kind")? {
            "pressure_gradient" => Forcing::PressureGradient(f(forcing_v, "value")?),
            "mass_flux" => Forcing::ConstantMassFlux {
                bulk: f(forcing_v, "bulk")?,
            },
            "none" => Forcing::None,
            _ => return Err(SpecError::Field("forcing.kind")),
        };
        let ic_v = v.get("ic").ok_or(SpecError::Field("ic"))?;
        let ic = match s(ic_v, "kind")? {
            "turbulent" => InitialCondition::Turbulent {
                amplitude: f(ic_v, "amplitude")?,
                seed: u(ic_v, "seed")?,
            },
            "laminar" => InitialCondition::Laminar {
                scale: f(ic_v, "scale")?,
            },
            "seeded_transition" => InitialCondition::SeededTransition {
                scale: f(ic_v, "scale")?,
                amplitude: f(ic_v, "amplitude")?,
                seed: u(ic_v, "seed")?,
            },
            _ => return Err(SpecError::Field("ic.kind")),
        };
        let mut params = Params::channel(32, 65, 32, 180.0);
        params.nx = u(&v, "nx")? as usize;
        params.ny = u(&v, "ny")? as usize;
        params.nz = u(&v, "nz")? as usize;
        params.lx = f(&v, "lx")?;
        params.lz = f(&v, "lz")?;
        params.nu = f(&v, "nu")?;
        params.dt = f(&v, "dt")?;
        params.spline_order = u(&v, "spline_order")? as usize;
        params.grid_stretch = f(&v, "stretch")?;
        params.nonlinear = b(&v, "nonlinear")?;
        params.forcing = forcing;
        params.pa = u(&v, "pa")? as usize;
        params.pb = u(&v, "pb")? as usize;
        params.fft_threads = u(&v, "threads")? as usize;
        params.batched = b(&v, "batched")?;
        params.pipeline = u(&v, "pipeline")? as usize;
        let spec = RunSpec {
            name: s(&v, "name")?.to_string(),
            params,
            steps: u(&v, "steps")?,
            ckpt_every: u(&v, "ckpt_every")?,
            ic,
        };
        if let Some(stored_hex) = v.get("hash").and_then(Json::as_str) {
            let stored =
                u64::from_str_radix(stored_hex, 16).map_err(|_| SpecError::Field("hash"))?;
            let computed = spec.spec_hash();
            if stored != computed {
                return Err(SpecError::HashMismatch { stored, computed });
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// RunConfig / control plane
// ---------------------------------------------------------------------------

/// Where a run restores its state from when it starts.
#[derive(Clone, Debug, PartialEq)]
pub enum ResumePolicy {
    /// Start from the spec's initial condition. Supervisor restarts
    /// after a crash still restore from the run's own checkpoint stem.
    Fresh,
    /// Restore from the run's own checkpoint stem when a committed
    /// generation exists there, else fall back to the initial condition
    /// — how a preempted or recovered job comes back.
    IfPresent,
    /// Restore from an explicit stem; a missing checkpoint is fatal
    /// (`dns-run --resume` semantics).
    Require(PathBuf),
}

/// Everything about *how* a run executes that is not part of its
/// [`RunSpec`]: filesystem layout, restart budget, health monitoring.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Checkpoint stem this run writes (and restores) its generations
    /// under.
    pub ckpt_stem: PathBuf,
    /// Restore source on the first attempt.
    pub resume: ResumePolicy,
    /// Always commit a final checkpoint generation when the run
    /// completes, even with `ckpt_every == 0` (the campaign server
    /// compares and archives final states through these).
    pub final_checkpoint: bool,
    /// Supervisor restart budget after rank crashes.
    pub max_restarts: usize,
    /// Transport receive budget (see [`dns_minimpi::RECV_TIMEOUT`]).
    pub recv_timeout: Duration,
    /// Run-health monitoring; `log` inside points at this run's JSONL
    /// flight recorder.
    pub health: Option<MonitorConfig>,
    /// Offset added to the supervisor attempt index when opening the
    /// flight recorder: segment 2 of a paused-and-resumed run passes a
    /// positive base so the recorder appends to the same JSONL story
    /// instead of truncating it.
    pub health_attempt_base: usize,
    /// Time-averaged turbulence-statistics collection
    /// ([`crate::stats::StatsAccumulator`]). `Some` enables sampling on
    /// a fresh start; an accumulator restored from a checkpoint always
    /// takes precedence (with *its* checkpointed policy), so a resumed
    /// run continues the same averaging window bit-exactly.
    pub stats: Option<crate::stats::StatsConfig>,
}

impl RunConfig {
    /// A config writing checkpoints (and nothing else) under `dir/state`.
    pub fn in_dir(dir: &Path) -> RunConfig {
        RunConfig {
            ckpt_stem: dir.join("state"),
            resume: ResumePolicy::Fresh,
            final_checkpoint: true,
            max_restarts: 0,
            recv_timeout: dns_minimpi::RECV_TIMEOUT,
            health: None,
            health_attempt_base: 0,
            stats: None,
        }
    }
}

/// Lifecycle of a controlled run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The world is stepping.
    Running,
    /// Checkpointed and descheduled by a pause request; resumable.
    Paused,
    /// Ran to its step budget.
    Done,
    /// Every supervised attempt failed.
    Failed,
    /// Stopped by a cancel request; not resumable.
    Cancelled,
}

const CMD_NONE: u8 = 0;
const CMD_PAUSE: u8 = 1;
const CMD_CANCEL: u8 = 2;

/// Shared control block between a run's world and its owner. Commands
/// are requests: the world honours them at the next step boundary, with
/// rank 0's observation broadcast so every rank acts on the same step.
#[derive(Debug)]
pub struct RunControl {
    cmd: AtomicU8,
    status: AtomicU8,
    step: AtomicU64,
}

impl Default for RunControl {
    fn default() -> Self {
        Self::new()
    }
}

impl RunControl {
    /// Fresh control block in the `Running` state.
    pub fn new() -> RunControl {
        RunControl {
            cmd: AtomicU8::new(CMD_NONE),
            status: AtomicU8::new(RunStatus::Running as u8),
            step: AtomicU64::new(0),
        }
    }

    /// Ask the run to checkpoint and stop at the next step boundary.
    pub fn request_pause(&self) {
        self.cmd.store(CMD_PAUSE, Ordering::SeqCst);
    }

    /// Ask the run to stop (without checkpointing) at the next boundary.
    pub fn request_cancel(&self) {
        self.cmd.store(CMD_CANCEL, Ordering::SeqCst);
    }

    /// Current lifecycle state.
    pub fn status(&self) -> RunStatus {
        match self.status.load(Ordering::SeqCst) {
            x if x == RunStatus::Paused as u8 => RunStatus::Paused,
            x if x == RunStatus::Done as u8 => RunStatus::Done,
            x if x == RunStatus::Failed as u8 => RunStatus::Failed,
            x if x == RunStatus::Cancelled as u8 => RunStatus::Cancelled,
            _ => RunStatus::Running,
        }
    }

    /// Last step the run reported completing.
    pub fn current_step(&self) -> u64 {
        self.step.load(Ordering::SeqCst)
    }

    fn set_status(&self, s: RunStatus) {
        self.status.store(s as u8, Ordering::SeqCst);
    }
}

/// Per-step context handed to a [`RunObserver`].
#[derive(Clone, Copy, Debug)]
pub struct StepCtx {
    /// Steps completed (this one included).
    pub step: u64,
    /// First step of this supervised attempt (resume point).
    pub first_step: u64,
    /// Wall seconds the step took on this rank.
    pub wall_s: f64,
    /// Whether this rank is the grid root (the conventional printer).
    pub root: bool,
}

/// End-of-run summary handed to [`RunObserver::on_finish`].
#[derive(Clone, Copy, Debug)]
pub struct RunSummary {
    /// Steps this attempt executed (excluding restored ones).
    pub steps_ran: u64,
    /// Wall seconds this attempt spent stepping.
    pub wall_s: f64,
    /// Whether this rank is the grid root.
    pub root: bool,
}

/// Caller hooks into the engine's step loop — how `dns-run` keeps its
/// live statistics, telemetry windows, and CSV data products without the
/// engine knowing about any of them. Hooks run on **every rank** (so
/// collective reductions inside them are safe); implementations gate
/// printing on the `root` flag. All methods default to no-ops; `()` is
/// the silent observer the campaign server uses.
pub trait RunObserver: Send + Sync {
    /// After state restore / initial conditions, before the first step.
    fn on_start(&self, dns: &ChannelDns, resumed_from: Option<u64>, attempt: usize) {
        let _ = (dns, resumed_from, attempt);
    }
    /// After every completed step.
    fn on_step(&self, dns: &ChannelDns, ctx: StepCtx) {
        let _ = (dns, ctx);
    }
    /// After the run completed its full step budget (not on pause or
    /// cancel), while the world is still alive — collective data
    /// products happen here.
    fn on_finish(&self, dns: &ChannelDns, summary: RunSummary) {
        let _ = (dns, summary);
    }
}

impl RunObserver for () {}

/// What [`execute`] reports when its supervised world winds down.
#[derive(Debug)]
pub struct RunOutcome {
    /// Final lifecycle state (`Done`, `Paused`, `Failed`, `Cancelled`).
    pub status: RunStatus,
    /// Last completed step.
    pub steps_done: u64,
    /// Supervisor restarts consumed.
    pub restarts: usize,
    /// Supervisor recovery timeline.
    pub events: Vec<RecoveryEvent>,
}

// ---------------------------------------------------------------------------
// engine
// ---------------------------------------------------------------------------

/// How each per-rank body run ended (collective: every rank returns the
/// same variant because the verdict that produced it was broadcast).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BodyExit {
    Completed,
    Paused,
    Cancelled,
}

/// Restore from `stem`'s newest committed manifest, falling back to a
/// plain (manifest-less) per-rank checkpoint. `None` when there is
/// nothing to restore — the caller starts from initial conditions.
fn try_restore(dns: &mut ChannelDns, stem: &Path) -> Option<u64> {
    match checkpoint::load_latest(dns, stem) {
        Ok(step) => Some(step),
        Err(checkpoint::CheckpointError::NoManifest { .. }) => match checkpoint::load(dns, stem) {
            Ok(()) => Some(dns.state().steps),
            Err(checkpoint::CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                None
            }
            Err(e) => panic!("cannot resume from {}: {e}", stem.display()),
        },
        Err(e) => panic!("cannot resume from {}: {e}", stem.display()),
    }
}

/// Run `spec` to completion (or pause/cancel) under the restart
/// supervisor, blocking the calling thread until the world winds down.
///
/// `plan_for(attempt)` supplies the fault plan per attempt (chaos tests
/// inject on attempt 0; production passes [`FaultPlan::none`] always).
/// The shared `ctl` block carries pause/cancel requests in and status /
/// progress out; `observer` hooks run on every rank as described on
/// [`RunObserver`].
pub fn execute<P>(
    spec: &RunSpec,
    cfg: &RunConfig,
    ctl: Arc<RunControl>,
    observer: Arc<dyn RunObserver>,
    plan_for: P,
) -> RunOutcome
where
    P: FnMut(usize) -> FaultPlan,
{
    if let Some(parent) = cfg.ckpt_stem.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let ranks = spec.params.pa * spec.params.pb;
    let spec = spec.clone();
    let body_cfg = cfg.clone();
    let body_ctl = Arc::clone(&ctl);
    let report = supervise(
        SupervisorConfig {
            ranks,
            max_restarts: cfg.max_restarts,
            recv_timeout: cfg.recv_timeout,
        },
        plan_for,
        move |world, attempt| attempt_body(world, attempt, &spec, &body_cfg, &body_ctl, &*observer),
    );
    let status = match &report.results {
        Some(exits) => match exits[0] {
            BodyExit::Completed => RunStatus::Done,
            BodyExit::Paused => RunStatus::Paused,
            BodyExit::Cancelled => RunStatus::Cancelled,
        },
        None => RunStatus::Failed,
    };
    ctl.set_status(status);
    // fold the supervisor's recovery timeline into the run's flight
    // recorder, so one JSONL file interleaves steps, checkpoints, and
    // crash-recovery markers
    if let Some(log) = cfg.health.as_ref().and_then(|h| h.log.as_ref()) {
        if !report.events.is_empty() {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(log)
            {
                for e in dns_health::recovery_to_flight(&report.events) {
                    let _ = writeln!(f, "{}", e.to_json_line());
                }
            }
        }
    }
    RunOutcome {
        status,
        steps_done: ctl.current_step(),
        restarts: report.restarts,
        events: report.events,
    }
}

/// One supervised attempt: build the solver, restore state per the
/// resume policy, run the controlled step loop, write checkpoints.
fn attempt_body(
    world: Communicator,
    attempt: dns_resilience::Attempt,
    spec: &RunSpec,
    cfg: &RunConfig,
    ctl: &Arc<RunControl>,
    observer: &dyn RunObserver,
) -> BodyExit {
    // control handles: fault polling + the pause/cancel verdict
    // broadcast; the health monitor allgathers on its own world-wide
    // communicator so its traffic never mixes with the solver's
    let fault_ctl = world.dup();
    let verdict_comm = world.dup();
    let health_comm = world.dup();
    let world_rank = world.rank();
    let mut dns = ChannelDns::new(world, spec.params.clone());
    let root = dns.pfft().comm_a().rank() == 0 && dns.pfft().comm_b().rank() == 0;

    let restored = match &cfg.resume {
        ResumePolicy::Require(stem) => {
            let r = try_restore(&mut dns, stem);
            if attempt.index == 0 && r.is_none() {
                panic!("resume required but no checkpoint at {}", stem.display());
            }
            r
        }
        ResumePolicy::IfPresent => try_restore(&mut dns, &cfg.ckpt_stem),
        ResumePolicy::Fresh => {
            if attempt.index > 0 {
                try_restore(&mut dns, &cfg.ckpt_stem)
            } else {
                None
            }
        }
    };
    if restored.is_none() {
        match spec.ic {
            InitialCondition::Turbulent { amplitude, seed } => {
                dns.set_turbulent_mean(1.0);
                dns.add_perturbation(amplitude, seed);
            }
            InitialCondition::Laminar { scale } => dns.set_laminar(scale),
            InitialCondition::SeededTransition {
                scale,
                amplitude,
                seed,
            } => {
                dns.set_laminar(scale);
                dns.add_perturbation(amplitude, seed);
            }
        }
    }
    // statistics: a checkpointed accumulator (installed by the restore
    // above) wins — resume continuity. Only a start without one gets a
    // fresh accumulator from the config.
    if let (Some(stats_cfg), None) = (cfg.stats, dns.stats()) {
        dns.enable_stats(stats_cfg);
    }
    observer.on_start(&dns, restored, attempt.index);

    let mut monitor = cfg.health.as_ref().map(|mon_cfg| {
        StepMonitor::new(
            health_comm,
            &dns,
            mon_cfg.clone(),
            cfg.health_attempt_base + attempt.index,
            spec.steps,
        )
        .expect("open flight recorder")
    });

    let t0 = std::time::Instant::now();
    let first_step = dns.state().steps;
    if world_rank == 0 {
        ctl.step.store(first_step, Ordering::SeqCst);
    }
    let exit = loop {
        if dns.state().steps >= spec.steps {
            break BodyExit::Completed;
        }
        // the pause/cancel verdict: rank 0 reads the shared command and
        // every rank takes the branch it broadcasts, so the whole world
        // checkpoints (or stops) on the same step boundary
        let local = if world_rank == 0 {
            Some(vec![ctl.cmd.load(Ordering::SeqCst)])
        } else {
            None
        };
        let verdict = verdict_comm.bcast(0, local)[0];
        if verdict == CMD_CANCEL {
            if world_rank == 0 {
                ctl.cmd.store(CMD_NONE, Ordering::SeqCst);
                ctl.set_status(RunStatus::Cancelled);
            }
            break BodyExit::Cancelled;
        }
        if verdict == CMD_PAUSE {
            checkpoint::save_with_manifest(&dns, &cfg.ckpt_stem).expect("write pause checkpoint");
            if let Some(mon) = monitor.as_mut() {
                mon.record_checkpoint(dns.state().steps);
            }
            if world_rank == 0 {
                ctl.cmd.store(CMD_NONE, Ordering::SeqCst);
                ctl.set_status(RunStatus::Paused);
            }
            break BodyExit::Paused;
        }

        let t_step = std::time::Instant::now();
        dns.step();
        let step_wall = t_step.elapsed().as_secs_f64();
        let s = dns.state().steps;
        if world_rank == 0 {
            ctl.step.store(s, Ordering::SeqCst);
        }
        if let Some(mon) = monitor.as_mut() {
            if let Err(abort) = mon.observe_step(&dns, step_wall) {
                // collective verdict: every rank panics identically and
                // the supervisor reports the reason instead of retrying
                // a run that physics has already lost
                panic!("{abort}");
            }
        }
        observer.on_step(
            &dns,
            StepCtx {
                step: s,
                first_step,
                wall_s: step_wall,
                root,
            },
        );
        if spec.ckpt_every > 0 && s.is_multiple_of(spec.ckpt_every) {
            checkpoint::save_with_manifest(&dns, &cfg.ckpt_stem).expect("write checkpoint");
            if let Some(mon) = monitor.as_mut() {
                mon.record_checkpoint(s);
            }
        }
        // injected chaos fires only after the step (and any checkpoint)
        // committed, modelling a crash between iterations
        fault_ctl.poll_step_faults(s);
    };

    if exit == BodyExit::Completed {
        // commit the final state so a recovered or preempted run leaves
        // the same last generation as an uninterrupted one
        let already = spec.ckpt_every > 0 && spec.steps.is_multiple_of(spec.ckpt_every);
        if cfg.final_checkpoint && !already {
            checkpoint::save_with_manifest(&dns, &cfg.ckpt_stem).expect("write final checkpoint");
            if let Some(mon) = monitor.as_mut() {
                mon.record_checkpoint(dns.state().steps);
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let ran = dns.state().steps - first_step;
    if let Some(mon) = monitor.as_mut() {
        mon.finish(ran, wall);
    }
    if exit == BodyExit::Completed {
        observer.on_finish(
            &dns,
            RunSummary {
                steps_ran: ran,
                wall_s: wall,
                root,
            },
        );
    }
    exit
}

// ---------------------------------------------------------------------------
// RunHandle
// ---------------------------------------------------------------------------

/// Why a [`RunHandle`] control operation was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HandleError {
    /// The operation needs the run in a different state.
    NotPaused(RunStatus),
}

impl std::fmt::Display for HandleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandleError::NotPaused(s) => write!(f, "run is {s:?}, not Paused"),
        }
    }
}

impl std::error::Error for HandleError {}

/// A run executing on a background thread, with pause / resume / cancel
/// / status control — the schedulable unit of the campaign server.
///
/// Pausing checkpoints the run (v2 manifest path) and winds its world
/// down; resuming spawns a fresh world that restores from that
/// checkpoint. The round trip is bitwise-lossless.
///
/// ```no_run
/// use dns_core::run::{RunConfig, RunHandle, RunSpec, RunStatus};
/// let spec = RunSpec { steps: 100, ..RunSpec::default() };
/// let mut h = RunHandle::spawn(spec, RunConfig::in_dir("target/demo".as_ref()));
/// h.pause();
/// h.wait_not_running();
/// if h.status() == RunStatus::Paused {
///     h.resume().unwrap();
/// }
/// let outcome = h.join();
/// assert_eq!(outcome.status, RunStatus::Done);
/// ```
pub struct RunHandle {
    spec: RunSpec,
    cfg: RunConfig,
    ctl: Arc<RunControl>,
    thread: Option<std::thread::JoinHandle<RunOutcome>>,
    /// Outcomes of earlier pause/resume segments, merged at `join`.
    segments: Vec<RunOutcome>,
}

impl RunHandle {
    /// Launch `spec` on a background thread under `cfg`.
    pub fn spawn(spec: RunSpec, cfg: RunConfig) -> RunHandle {
        Self::spawn_observed(spec, cfg, Arc::new(()))
    }

    /// [`RunHandle::spawn`] with caller hooks into the step loop.
    pub fn spawn_observed(
        spec: RunSpec,
        cfg: RunConfig,
        observer: Arc<dyn RunObserver + 'static>,
    ) -> RunHandle {
        let ctl = Arc::new(RunControl::new());
        let thread = Self::launch(&spec, &cfg, &ctl, observer);
        RunHandle {
            spec,
            cfg,
            ctl,
            thread: Some(thread),
            segments: Vec::new(),
        }
    }

    fn launch(
        spec: &RunSpec,
        cfg: &RunConfig,
        ctl: &Arc<RunControl>,
        observer: Arc<dyn RunObserver>,
    ) -> std::thread::JoinHandle<RunOutcome> {
        let spec = spec.clone();
        let cfg = cfg.clone();
        let ctl = Arc::clone(ctl);
        std::thread::Builder::new()
            .name(format!("run-{}", spec.name))
            .spawn(move || execute(&spec, &cfg, ctl, observer, |_| FaultPlan::none()))
            .expect("spawn run thread")
    }

    /// The spec this handle is running.
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// The checkpoint stem the run writes under.
    pub fn ckpt_stem(&self) -> &Path {
        &self.cfg.ckpt_stem
    }

    /// Current lifecycle state.
    pub fn status(&self) -> RunStatus {
        self.ctl.status()
    }

    /// Last step the run reported completing.
    pub fn current_step(&self) -> u64 {
        self.ctl.current_step()
    }

    /// Whether the background thread has wound down (the run is paused,
    /// done, failed, or cancelled — not stepping).
    pub fn is_settled(&self) -> bool {
        self.thread.as_ref().is_none_or(|t| t.is_finished())
    }

    /// Request a checkpoint-and-stop at the next step boundary. The run
    /// may instead complete if it was already on its last step; poll
    /// [`RunHandle::status`] (or [`RunHandle::wait_not_running`]) for
    /// the verdict.
    pub fn pause(&self) {
        self.ctl.request_pause();
    }

    /// Request a stop without checkpoint at the next step boundary.
    pub fn cancel(&mut self) {
        match self.status() {
            RunStatus::Running => self.ctl.request_cancel(),
            // a paused world has no thread to honour the request —
            // cancelling it is a pure bookkeeping transition
            RunStatus::Paused => self.ctl.set_status(RunStatus::Cancelled),
            _ => {}
        }
    }

    /// Block until the run leaves the `Running` state (pause/cancel
    /// honoured, completion, or failure).
    pub fn wait_not_running(&self) {
        while self.status() == RunStatus::Running {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Relaunch a paused run from its checkpoint. The new world restores
    /// the paused generation and continues to the spec's step budget.
    pub fn resume(&mut self) -> Result<(), HandleError> {
        self.resume_observed(Arc::new(()))
    }

    /// [`RunHandle::resume`] with caller hooks.
    pub fn resume_observed(
        &mut self,
        observer: Arc<dyn RunObserver + 'static>,
    ) -> Result<(), HandleError> {
        if self.status() != RunStatus::Paused {
            return Err(HandleError::NotPaused(self.status()));
        }
        if let Some(t) = self.thread.take() {
            let outcome = t.join().expect("run thread never panics");
            self.segments.push(outcome);
        }
        let mut cfg = self.cfg.clone();
        cfg.resume = ResumePolicy::IfPresent;
        // later flight-recorder segments append to the same JSONL story
        cfg.health_attempt_base = self.cfg.health_attempt_base
            + self.segments.iter().map(|o| o.restarts + 1).sum::<usize>();
        self.ctl.cmd.store(CMD_NONE, Ordering::SeqCst);
        self.ctl.set_status(RunStatus::Running);
        self.thread = Some(Self::launch(&self.spec, &cfg, &self.ctl, observer));
        Ok(())
    }

    /// Wind down and report: joins the background thread and merges the
    /// outcomes of every pause/resume segment (restarts summed, events
    /// concatenated, final status from the last segment).
    pub fn join(mut self) -> RunOutcome {
        let mut merged = RunOutcome {
            status: self.status(),
            steps_done: self.current_step(),
            restarts: 0,
            events: Vec::new(),
        };
        let last = self
            .thread
            .take()
            .map(|t| t.join().expect("run thread never panics"));
        for seg in self.segments.drain(..).chain(last) {
            merged.restarts += seg.restarts;
            merged.events.extend(seg.events);
            merged.status = seg.status;
            merged.steps_done = seg.steps_done;
        }
        // a cancel applied to an already-paused run never reaches a
        // segment; the control block is the source of truth for it
        if self.ctl.status() == RunStatus::Cancelled {
            merged.status = RunStatus::Cancelled;
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> RunSpec {
        RunSpec {
            name: "tiny".into(),
            params: Params::channel(16, 25, 16, 50.0).with_dt(1e-3),
            steps: 4,
            ckpt_every: 2,
            ic: InitialCondition::Laminar { scale: 1.0 },
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let mut spec = tiny_spec();
        spec.params.forcing = Forcing::ConstantMassFlux { bulk: 0.9 };
        spec.params.pa = 2;
        spec.params.pb = 2;
        spec.ic = InitialCondition::Turbulent {
            amplitude: 0.25,
            seed: 7,
        };
        let text = spec.to_json();
        let back = RunSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text);
        assert_eq!(back.cores(), 4);
    }

    #[test]
    fn tampered_spec_is_rejected_by_its_hash() {
        let text = tiny_spec().to_json();
        let tampered = text.replace("\"steps\":4", "\"steps\":400");
        match RunSpec::from_json(&tampered) {
            Err(SpecError::HashMismatch { .. }) => {}
            other => panic!("expected hash mismatch, got {other:?}"),
        }
    }

    #[test]
    fn handwritten_spec_without_hash_is_accepted() {
        let text = tiny_spec().to_json();
        let v = dns_json::parse(&text).unwrap();
        let Json::Obj(mut m) = v else { unreachable!() };
        m.remove("hash");
        let spec = RunSpec::from_json(&Json::Obj(m).dump()).unwrap();
        assert_eq!(spec, tiny_spec());
    }

    #[test]
    fn validation_is_typed_not_panicking() {
        let mut spec = tiny_spec();
        spec.params.nx = 30;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        let mut spec = tiny_spec();
        spec.steps = 0;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        let mut spec = tiny_spec();
        spec.params.ny = 8;
        assert!(spec.validate().is_err());
        assert!(tiny_spec().validate().is_ok());
    }

    #[test]
    fn handle_runs_to_done() {
        let dir = std::env::temp_dir().join(format!("dns-run-handle-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let h = RunHandle::spawn(tiny_spec(), RunConfig::in_dir(&dir));
        let outcome = h.join();
        assert_eq!(outcome.status, RunStatus::Done);
        assert_eq!(outcome.steps_done, 4);
        assert_eq!(outcome.restarts, 0);
        // the final generation is committed
        assert!(dir.join("state.latest").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_stops_early_without_final_checkpoint() {
        let dir = std::env::temp_dir().join(format!("dns-run-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = tiny_spec();
        spec.steps = 100_000; // far beyond what the test waits for
        spec.ckpt_every = 0;
        let mut h = RunHandle::spawn(spec, RunConfig::in_dir(&dir));
        while h.current_step() < 1 {
            std::thread::sleep(Duration::from_millis(2));
        }
        h.cancel();
        h.wait_not_running();
        let outcome = h.join();
        assert_eq!(outcome.status, RunStatus::Cancelled);
        assert!(outcome.steps_done < 100_000);
        assert!(!dir.join("state.latest").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
