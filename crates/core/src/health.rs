//! Solver-side run-health glue: the [`StepMonitor`] that feeds the
//! `dns-health` flight recorder, straggler detector, and physics
//! sentinels from a live [`ChannelDns`].
//!
//! The `dns-health` crate itself is deliberately solver-free (it knows
//! JSONL events and detector state machines, not spectral fields); this
//! module owns the other half of the contract — what to measure each
//! step and how to combine it across ranks:
//!
//! * **per-step deltas** against a baseline snapshot of the solver's
//!   phase timers, the rank thread's cumulative receive-wait clock, and
//!   the transform communicators' traffic counters;
//! * the **busy/wait split** `busy = wall - Δrecv_wait`: injected or
//!   real slowness on a rank shows up as *busy* time on that rank and
//!   as *wait* time on every rank blocked receiving from it, so busy is
//!   the column the straggler detector consumes;
//! * **collective sentinels** — CFL, divergence, energy, and finiteness
//!   are reduced over all ranks before the thresholds are applied, so
//!   every rank reaches the identical warn/abort verdict;
//! * one **allgather** of an 8-number row per step onto the monitor's
//!   own communicator, after which all baselines are re-snapshotted so
//!   the monitor's own traffic never pollutes the next step's deltas.
//!
//! Rank 0 of the monitor communicator is the only writer: it folds the
//! gathered rows into `FlightEvent::Step` records and appends health
//! events as the detectors fire.

use std::path::PathBuf;

use crate::solver::{ChannelDns, PhaseTimers};
use crate::stats;
use dns_health::{
    FlightEvent, FlightRecorder, SentinelAbort, SentinelConfig, SentinelValues, Sentinels,
    StragglerConfig, StragglerDetector,
};
use dns_minimpi::Communicator;

/// What the [`StepMonitor`] watches and where it writes.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Flight-recorder JSONL path (rank 0 writes; `None` keeps the
    /// detectors running without an on-disk artifact).
    pub log: Option<PathBuf>,
    /// Evaluate the physics sentinels every N steps (they cost inverse
    /// transforms and reductions; 0 disables them entirely).
    pub sentinel_every: u64,
    /// Straggler-detector thresholds.
    pub straggler: StragglerConfig,
    /// Physics-sentinel thresholds.
    pub sentinels: SentinelConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            log: None,
            sentinel_every: 1,
            straggler: StragglerConfig::default(),
            sentinels: SentinelConfig::default(),
        }
    }
}

/// Baseline snapshot the per-step deltas are measured against.
struct Baselines {
    timers: PhaseTimers,
    recv_wait: f64,
    overlap: f64,
    msgs: u64,
    bytes: u64,
}

impl Baselines {
    fn snapshot(dns: &ChannelDns, comm: &Communicator) -> Baselines {
        let a = dns.pfft().comm_a().stats();
        let b = dns.pfft().comm_b().stats();
        Baselines {
            timers: dns.timers(),
            // the wait clock lives on the rank thread, shared by every
            // communicator of the rank — any handle reads the same value
            recv_wait: comm.recv_wait_seconds(),
            // exchange time the pipelined transposes hid behind compute;
            // stays zero under blocking exchanges
            overlap: comm.overlap_seconds(),
            // sends only: counting both directions would double the traffic
            msgs: a.messages_sent + b.messages_sent,
            bytes: a.bytes_sent + b.bytes_sent,
        }
    }
}

/// Per-rank run-health monitor driven once per completed RK3 step.
///
/// Collective: every rank of the run must construct one and call
/// [`observe_step`](StepMonitor::observe_step) in lockstep.
pub struct StepMonitor {
    comm: Communicator,
    cfg: MonitorConfig,
    recorder: Option<FlightRecorder>,
    straggler: StragglerDetector,
    sentinels: Sentinels,
    prev: Baselines,
    attempt: usize,
}

impl StepMonitor {
    /// Build the monitor for one supervised attempt. Rank 0 opens the
    /// flight-recorder file — truncating on a fresh run (`attempt == 0`),
    /// appending on a restart so one file holds the whole story — and
    /// writes the `run_start` event. `total_steps` is the run's target
    /// step count; the resume point is read from the solver state.
    pub fn new(
        comm: Communicator,
        dns: &ChannelDns,
        cfg: MonitorConfig,
        attempt: usize,
        total_steps: u64,
    ) -> std::io::Result<StepMonitor> {
        dns_health::set_enabled(true);
        let recorder = match (&cfg.log, comm.rank()) {
            (Some(path), 0) => {
                let mut rec = if attempt == 0 {
                    FlightRecorder::create(path)?
                } else {
                    FlightRecorder::append(path)?
                };
                let p = dns.params();
                rec.record(&FlightEvent::RunStart {
                    attempt,
                    nx: p.nx,
                    ny: p.ny,
                    nz: p.nz,
                    pa: p.pa,
                    pb: p.pb,
                    dt: p.dt,
                    steps: total_steps,
                    resumed_from: dns.state().steps,
                })?;
                Some(rec)
            }
            _ => None,
        };
        Ok(StepMonitor {
            straggler: StragglerDetector::new(cfg.straggler, comm.size()),
            sentinels: Sentinels::new(cfg.sentinels),
            prev: Baselines::snapshot(dns, &comm),
            recorder,
            comm,
            cfg,
            attempt,
        })
    }

    /// `true` on the single rank that writes the flight recorder.
    pub fn root(&self) -> bool {
        self.comm.rank() == 0
    }

    /// Ingest one completed step (collective). `wall_s` is the caller's
    /// wall-clock measurement around `dns.step()`. Runs the sentinels on
    /// their cadence, allgathers the per-rank rows, lets rank 0 write
    /// the step records and any health events, and re-baselines.
    ///
    /// Every rank returns the identical `Err(SentinelAbort)` when a
    /// physics sentinel crosses its abort threshold — the inputs to the
    /// verdict are reduced collectively first.
    pub fn observe_step(&mut self, dns: &ChannelDns, wall_s: f64) -> Result<(), SentinelAbort> {
        let step = dns.state().steps;
        let t = dns.timers();
        let d_transpose = t.transpose - self.prev.timers.transpose;
        let d_fft = t.fft - self.prev.timers.fft;
        let d_ns = t.ns_advance - self.prev.timers.ns_advance;
        let wait = self.comm.recv_wait_seconds() - self.prev.recv_wait;
        let overlap = self.comm.overlap_seconds() - self.prev.overlap;
        let busy = (wall_s - wait).max(0.0);
        let a = dns.pfft().comm_a().stats();
        let b = dns.pfft().comm_b().stats();
        let msgs = (a.messages_sent + b.messages_sent) - self.prev.msgs;
        let bytes = (a.bytes_sent + b.bytes_sent) - self.prev.bytes;

        // physics sentinels on their cadence, from collectively-reduced
        // values so the verdict below is identical on every rank
        let verdict = if self.cfg.sentinel_every > 0 && step.is_multiple_of(self.cfg.sentinel_every)
        {
            let finite_local = stats::local_finite(dns);
            let finite = self
                .comm
                .allreduce_max(if finite_local { 0.0 } else { 1.0 })
                == 0.0;
            // on a non-finite state skip the derived quantities (they
            // would only launder the NaNs); finite=false already aborts
            let (cfl, max_div, energy) = if finite {
                (
                    dns.cfl(),
                    self.comm.allreduce_max(stats::max_divergence(dns)),
                    stats::kinetic_energy(dns),
                )
            } else {
                (0.0, 0.0, 0.0)
            };
            let values = SentinelValues {
                cfl,
                max_div,
                energy,
                finite,
            };
            Some((values, self.sentinels.check(step, &values)))
        } else {
            None
        };

        // one 9-number row per rank onto the monitor's communicator
        let row = vec![
            wall_s,
            d_transpose,
            d_fft,
            d_ns,
            wait,
            overlap,
            busy,
            msgs as f64,
            bytes as f64,
        ];
        let rows = self.comm.allgather(row);

        if self.comm.rank() == 0 {
            let mut write = |event: &FlightEvent| {
                if let Some(rec) = self.recorder.as_mut() {
                    rec.record(event).expect("write flight recorder");
                }
            };
            for (rank, row) in rows.iter().enumerate() {
                write(&FlightEvent::Step {
                    step,
                    rank,
                    wall_s: row[0],
                    transpose_s: row[1],
                    fft_s: row[2],
                    ns_s: row[3],
                    recv_wait_s: row[4],
                    overlap_s: row[5],
                    busy_s: row[6],
                    msgs: row[7] as u64,
                    bytes: row[8] as u64,
                });
            }
            if let Some((values, result)) = &verdict {
                write(&FlightEvent::Sentinel {
                    step,
                    cfl: values.cfl,
                    max_div: values.max_div,
                    energy: values.energy,
                    finite: values.finite,
                });
                if let Ok(warns) = result {
                    for w in warns {
                        write(&FlightEvent::Health(w.clone()));
                    }
                }
            }
            let busy_col: Vec<f64> = rows.iter().map(|r| r[6]).collect();
            for event in self.straggler.observe(step, &busy_col) {
                write(&FlightEvent::Health(event));
            }
        }

        // re-baseline last, so the monitor's own collectives (sentinel
        // reductions, the allgather above) stay out of the next delta
        self.prev = Baselines::snapshot(dns, &self.comm);

        match verdict {
            Some((_, Err(abort))) => {
                if let Some(rec) = self.recorder.as_mut() {
                    rec.flush().expect("flush flight recorder");
                }
                Err(abort)
            }
            _ => Ok(()),
        }
    }

    /// Note a committed checkpoint in the timeline (rank 0; the recorder
    /// flushes checkpoint events through immediately for durability).
    pub fn record_checkpoint(&mut self, step: u64) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(&FlightEvent::Checkpoint {
                step,
                attempt: self.attempt,
            })
            .expect("write flight recorder");
        }
    }

    /// Close out the attempt: write `run_end` and flush.
    pub fn finish(&mut self, steps_run: u64, wall_s: f64) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(&FlightEvent::RunEnd { steps_run, wall_s })
                .expect("write flight recorder");
            rec.flush().expect("flush flight recorder");
        }
    }
}
