//! Headless fixed-step workload probes for the scaling campaign.
//!
//! The dns-scaling harness needs to run the *real* stack — the full RK3
//! step and the bare pfft cycle — at many rank/thread configurations
//! and come back with two things per configuration: measured per-phase
//! wall seconds, and the telemetry counter totals that produced them.
//! These probes package the measurement-window protocol so every
//! harness and bench measures the same way:
//!
//! 1. telemetry off, registry reset (driver, before spawning ranks);
//! 2. warmup steps (plans built, scratch allocated, pools spun up);
//! 3. barrier; rank 0 enables phase-level telemetry; barrier;
//! 4. timed steps, each rank clocking its own wall time;
//! 5. barrier; rank 0 disables telemetry; per-rank timers returned;
//! 6. driver snapshots the registry after every rank has flushed.
//!
//! Flipping the global level at a barrier (rather than resetting
//! mid-run) keeps warmup work out of the counters even when it ran on
//! rayon pool threads, whose buffers cannot be flushed from the rank
//! thread.

use crate::params::Params;
use crate::solver::{run_parallel, PhaseTimers};
use dns_pfft::{ParallelFft, PfftConfig};
use dns_telemetry as telemetry;
use std::time::Instant;

/// One probed configuration: measured per-step phase seconds plus the
/// telemetry snapshot covering exactly the timed steps.
pub struct Probe {
    /// minimpi ranks the probe ran on.
    pub ranks: usize,
    /// FFT threads per rank.
    pub threads: usize,
    /// Timed steps (or cycles) the measurements cover.
    pub steps: usize,
    /// Critical-path wall seconds per step (max over ranks).
    pub wall_s_per_step: f64,
    /// Critical-path per-phase seconds per step (max over ranks of each
    /// phase accumulator). `ns_advance` is zero for pfft-cycle probes.
    pub seconds_per_step: PhaseTimers,
    /// Telemetry snapshot of the timed window — feed to
    /// [`dns_telemetry::counts_json`] for the machine-readable export.
    pub snapshot: telemetry::Snapshot,
}

fn max_timers(per_rank: &[PhaseTimers]) -> PhaseTimers {
    let mut out = PhaseTimers::default();
    for t in per_rank {
        out.transpose = out.transpose.max(t.transpose);
        out.fft = out.fft.max(t.fft);
        out.ns_advance = out.ns_advance.max(t.ns_advance);
    }
    out
}

/// Run `steps` timed RK3 steps of the full solver after `warmup`
/// untimed ones, on the `pa x pb` rank grid and thread count in
/// `params`, and return the measured phase seconds and counters.
///
/// The field is seeded with the laminar profile plus a deterministic
/// perturbation so the nonlinear terms, dealiasing passes, and banded
/// solves all do representative work.
pub fn probe_rk3(params: Params, warmup: usize, steps: usize) -> Probe {
    assert!(steps >= 1, "need at least one timed step");
    let ranks = params.pa * params.pb;
    let threads = params.fft_threads;
    telemetry::set_level(telemetry::Level::Off);
    telemetry::reset();
    let per_rank = run_parallel(params, move |dns| {
        dns.set_laminar(1.0);
        dns.add_perturbation(1e-3, 42);
        for _ in 0..warmup {
            dns.step();
        }
        dns.reset_timers();
        // sync the 2D grid, then let one rank open the telemetry window
        let root = dns.pfft().comm_a().rank() == 0 && dns.pfft().comm_b().rank() == 0;
        dns.pfft().comm_b().barrier();
        dns.pfft().comm_a().barrier();
        if root {
            telemetry::set_level(telemetry::Level::Phases);
        }
        dns.pfft().comm_a().barrier();
        dns.pfft().comm_b().barrier();
        let t0 = Instant::now();
        for _ in 0..steps {
            dns.step();
        }
        let wall = t0.elapsed().as_secs_f64();
        dns.pfft().comm_b().barrier();
        dns.pfft().comm_a().barrier();
        if root {
            telemetry::set_level(telemetry::Level::Off);
        }
        (wall, dns.timers())
    });
    let wall = per_rank.iter().map(|(w, _)| *w).fold(0.0, f64::max);
    let timers: Vec<PhaseTimers> = per_rank.iter().map(|(_, t)| *t).collect();
    let mut seconds = max_timers(&timers);
    seconds.transpose /= steps as f64;
    seconds.fft /= steps as f64;
    seconds.ns_advance /= steps as f64;
    Probe {
        ranks,
        threads,
        steps,
        wall_s_per_step: wall / steps as f64,
        seconds_per_step: seconds,
        snapshot: telemetry::snapshot(),
    }
}

/// Run `cycles` timed forward+inverse pfft cycles after `warmup`
/// untimed ones. `customized` selects the paper's kernel
/// ([`PfftConfig::customized`]) vs the P3DFFT-style baseline; the
/// probe's `ns_advance` phase is always zero.
#[allow(clippy::too_many_arguments)]
pub fn probe_pfft_cycle(
    nx: usize,
    ny: usize,
    nz: usize,
    pa: usize,
    pb: usize,
    threads: usize,
    customized: bool,
    warmup: usize,
    cycles: usize,
) -> Probe {
    assert!(cycles >= 1, "need at least one timed cycle");
    let ranks = pa * pb;
    telemetry::set_level(telemetry::Level::Off);
    telemetry::reset();
    let per_rank = dns_minimpi::run(ranks, move |world| {
        let cfg = if customized {
            PfftConfig::customized(nx, ny, nz, pa, pb).with_threads(threads)
        } else {
            PfftConfig::p3dfft_baseline(nx, ny, nz, pa, pb).with_threads(threads)
        };
        let root = world.rank() == 0;
        let p = ParallelFft::new(world, cfg);
        let n = p.x_pencil_len();
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
        for _ in 0..warmup {
            let _ = p.cycle(&x);
        }
        p.reset_timers();
        // sync the 2D grid, then open/close the telemetry window
        p.comm_b().barrier();
        p.comm_a().barrier();
        if root {
            telemetry::set_level(telemetry::Level::Phases);
        }
        p.comm_a().barrier();
        p.comm_b().barrier();
        let t0 = Instant::now();
        for _ in 0..cycles {
            let _ = p.cycle(&x);
        }
        let wall = t0.elapsed().as_secs_f64();
        p.comm_b().barrier();
        p.comm_a().barrier();
        if root {
            telemetry::set_level(telemetry::Level::Off);
        }
        let t = p.timers();
        (
            wall,
            PhaseTimers {
                transpose: t.transpose,
                fft: t.fft,
                ns_advance: 0.0,
            },
        )
    });
    let wall = per_rank.iter().map(|(w, _)| *w).fold(0.0, f64::max);
    let timers: Vec<PhaseTimers> = per_rank.iter().map(|(_, t)| *t).collect();
    let mut seconds = max_timers(&timers);
    seconds.transpose /= cycles as f64;
    seconds.fft /= cycles as f64;
    Probe {
        ranks,
        threads,
        steps: cycles,
        wall_s_per_step: wall / cycles as f64,
        seconds_per_step: seconds,
        snapshot: telemetry::snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk3_probe_measures_time_and_counts() {
        let p = Params::channel(16, 17, 16, 180.0).with_dt(1e-4);
        let probe = probe_rk3(p, 1, 2);
        assert_eq!(probe.ranks, 1);
        assert_eq!(probe.steps, 2);
        assert!(probe.wall_s_per_step > 0.0);
        assert!(probe.seconds_per_step.fft > 0.0);
        assert!(probe.seconds_per_step.ns_advance > 0.0);
        let by_phase = probe.snapshot.total_counters_by_phase();
        use telemetry::{Counter, Phase};
        assert!(by_phase[Phase::Fft as usize].get(Counter::Flops) > 0);
        assert!(by_phase[Phase::NsAdvance as usize].get(Counter::Flops) > 0);
    }

    #[test]
    fn pfft_probe_counts_fft_flops_and_transpose_bytes() {
        let probe = probe_pfft_cycle(16, 9, 16, 2, 1, 1, true, 1, 2);
        assert_eq!(probe.ranks, 2);
        assert!(probe.wall_s_per_step > 0.0);
        assert!(probe.seconds_per_step.ns_advance == 0.0);
        let by_phase = probe.snapshot.total_counters_by_phase();
        use telemetry::{Counter, Phase};
        assert!(by_phase[Phase::Fft as usize].get(Counter::Flops) > 0);
        assert!(by_phase[Phase::Transpose as usize].get(Counter::DdrBytes) > 0);
    }
}
