//! Pressure recovery and pressure statistics.
//!
//! The KMM formulation eliminates the pressure, but the pressure field is
//! itself a primary data product of channel DNS (its wall fluctuations,
//! its role in the energy redistribution terms). It is recovered after
//! the fact from the pressure Poisson equation
//!
//! ```text
//! laplacian(p) = div(H),   dp/dy |wall = H_y + nu * laplacian(v) |wall
//! ```
//!
//! solved per horizontal wavenumber with the same corner-banded
//! collocation machinery as the time advance. The mean mode carries the
//! classic exact identity `<p>(y) + <v'v'>(y) = const`, which the tests
//! verify.

use crate::nonlinear::{self, HFields};
use crate::solver::ChannelDns;
use crate::wallnormal::row_dot_complex;
use crate::C64;
use dns_banded::{BatchedFactor, CornerBanded, CornerLu, RhsPanel};

/// Spline coefficients of the pressure for every locally-owned mode
/// (y-pencil layout), gauge-fixed so the mean pressure vanishes at the
/// lower wall.
pub fn pressure_coefficients(dns: &ChannelDns) -> Vec<C64> {
    let h = nonlinear::quadratic_h(dns);
    pressure_from_h(dns, &h)
}

/// Pressure solve from precomputed convective fluxes. Routes every
/// non-mean mode through one batched multi-RHS panel solve when
/// `Params::batched` is on; [`pressure_from_h_scalar`] is the per-mode
/// oracle (results agree to round-off).
pub fn pressure_from_h(dns: &ChannelDns, h: &HFields) -> Vec<C64> {
    if !dns.params().batched {
        return pressure_from_h_scalar(dns, h);
    }
    let ops = dns.ops();
    let ny = ops.n();
    let mut out = vec![C64::new(0.0, 0.0); dns.field_len()];
    // the batched panel covers the regular modes; the mean mode's gauge
    // row gives it a different boundary-row structure, so it stays on
    // the scalar path (one mode, not worth a panel)
    let batched: Vec<usize> = (0..dns.local_modes())
        .filter(|&m| !dns.is_nyquist(m) && !dns.is_mean(m))
        .collect();
    for m in 0..dns.local_modes() {
        if dns.is_mean(m) {
            let r = dns.line_range(m);
            let (rhs, op) = mode_system(dns, h, m);
            let lu = CornerLu::factor(op).expect("pressure operator nonsingular");
            let mut rhs = rhs;
            lu.solve_complex(&mut rhs);
            out[r].copy_from_slice(&rhs);
        }
    }
    if batched.is_empty() {
        return out;
    }
    let mut mats = Vec::with_capacity(batched.len());
    let mut panel = RhsPanel::new(ny, batched.len());
    for (r, &m) in batched.iter().enumerate() {
        let (rhs, op) = mode_system(dns, h, m);
        panel.load_col(r, &rhs);
        mats.push(op);
    }
    let batch = BatchedFactor::factor(mats).expect("pressure operators nonsingular");
    batch.solve_panel(&mut panel);
    for (r, &m) in batched.iter().enumerate() {
        panel.store_col(r, &mut out[dns.line_range(m)]);
    }
    out
}

/// Per-mode scalar pressure solve (the batched path's agreement oracle).
pub fn pressure_from_h_scalar(dns: &ChannelDns, h: &HFields) -> Vec<C64> {
    let mut out = vec![C64::new(0.0, 0.0); dns.field_len()];
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) {
            continue;
        }
        let r = dns.line_range(m);
        let (mut rhs, op) = mode_system(dns, h, m);
        let lu = CornerLu::factor(op).expect("pressure operator nonsingular");
        lu.solve_complex(&mut rhs);
        out[r].copy_from_slice(&rhs);
    }
    out
}

/// Assemble mode `m`'s pressure Poisson system: the right-hand side
/// (divergence of `H` with the wall rows overwritten by the Neumann /
/// gauge data) and the boundary-conditioned `B2 - k^2 B0` operator.
fn mode_system(dns: &ChannelDns, h: &HFields, m: usize) -> (Vec<C64>, CornerBanded) {
    let ops = dns.ops();
    let ny = ops.n();
    let nu = dns.params().nu;
    let r = dns.line_range(m);
    let (ikx, ikz, k2) = dns.mode_wavenumbers(m);

    // RHS = div H = ikx Hx + d/dy Hy + ikz Hz (values)
    let hy_coef = ops.interpolate_complex(&h.hy[r.clone()]);
    let mut dy_vals = vec![C64::new(0.0, 0.0); ny];
    ops.b1().matvec_complex(&hy_coef, &mut dy_vals);
    let mut rhs: Vec<C64> = (0..ny)
        .map(|j| ikx * h.hx[r.start + j] + dy_vals[j] + ikz * h.hz[r.start + j])
        .collect();

    // operator (B2 - k^2 B0) with Neumann rows; the mean mode gets a
    // Dirichlet gauge row at the lower wall instead (Neumann-Neumann
    // is singular at k = 0)
    let mut op = ops.combine(-k2, 0.0, 1.0);
    if dns.is_mean(m) {
        ops.set_boundary_row(&mut op, 0, -1.0, 0);
    } else {
        ops.set_boundary_row(&mut op, 0, -1.0, 1);
    }
    ops.set_boundary_row(&mut op, ny - 1, 1.0, 1);

    // Neumann data: dp/dy = H_y + nu (D2 - k^2) v at the walls
    let cv = &dns.state().v()[r.clone()];
    let mut lap_v = vec![C64::new(0.0, 0.0); ny];
    let mut b0v = vec![C64::new(0.0, 0.0); ny];
    ops.b2().matvec_complex(cv, &mut lap_v);
    ops.b0().matvec_complex(cv, &mut b0v);
    let bc = |row: usize| h.hy[r.start + row] + nu * (lap_v[row] - k2 * b0v[row]);
    rhs[0] = if dns.is_mean(m) {
        C64::new(0.0, 0.0) // gauge p(-1) = 0
    } else {
        bc(0)
    };
    rhs[ny - 1] = bc(ny - 1);
    (rhs, op)
}

/// Mean-pressure profile and pressure-fluctuation variance at the
/// collocation points (collective).
pub struct PressureProfiles {
    /// Collocation points.
    pub y: Vec<f64>,
    /// `<p>(y)` (gauge: zero at the lower wall).
    pub p_mean: Vec<f64>,
    /// `<p'p'>(y)`.
    pub pp: Vec<f64>,
}

/// Compute pressure statistics (collective).
pub fn pressure_profiles(dns: &ChannelDns) -> PressureProfiles {
    let coef = pressure_coefficients(dns);
    let ny = dns.params().ny;
    let ops = dns.ops();
    let mut acc = vec![0.0f64; 2 * ny];
    let mut vals = vec![C64::new(0.0, 0.0); ny];
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) {
            continue;
        }
        let r = dns.line_range(m);
        ops.b0().matvec_complex(&coef[r], &mut vals);
        if dns.is_mean(m) {
            for j in 0..ny {
                acc[j] += vals[j].re;
            }
        } else {
            let w = dns.mode_weight(m);
            for j in 0..ny {
                acc[ny + j] += w * vals[j].norm_sqr();
            }
        }
    }
    let acc = dns.pfft().comm_a().allreduce(&acc, |a, b| a + b);
    let acc = dns.pfft().comm_b().allreduce(&acc, |a, b| a + b);
    PressureProfiles {
        y: ops.points().to_vec(),
        p_mean: acc[..ny].to_vec(),
        pp: acc[ny..].to_vec(),
    }
}

/// Residual of the discrete pressure Poisson equation for mode `m`
/// (diagnostics/tests): max over interior rows of
/// `|(D2 - k^2) p - div H|`.
pub fn poisson_residual(dns: &ChannelDns, m: usize, coef: &[C64], h: &HFields) -> f64 {
    let ops = dns.ops();
    let ny = ops.n();
    let r = dns.line_range(m);
    let (ikx, ikz, k2) = dns.mode_wavenumbers(m);
    let hy_coef = ops.interpolate_complex(&h.hy[r.clone()]);
    let mut dy_vals = vec![C64::new(0.0, 0.0); ny];
    ops.b1().matvec_complex(&hy_coef, &mut dy_vals);
    let mut d2p = vec![C64::new(0.0, 0.0); ny];
    let mut b0p = vec![C64::new(0.0, 0.0); ny];
    ops.b2().matvec_complex(&coef[r.clone()], &mut d2p);
    ops.b0().matvec_complex(&coef[r.clone()], &mut b0p);
    let mut worst = 0.0f64;
    for j in 1..ny - 1 {
        let lhs = d2p[j] - k2 * b0p[j];
        let rhs = ikx * h.hx[r.start + j] + dy_vals[j] + ikz * h.hz[r.start + j];
        worst = worst.max((lhs - rhs).norm());
    }
    // boundary rows: Neumann condition (skip the mean gauge row)
    if !dns.is_mean(m) {
        let slope0 = row_dot_complex(ops.b1(), 0, &coef[r.clone()]);
        let mut lap_v = vec![C64::new(0.0, 0.0); ny];
        let mut b0v = vec![C64::new(0.0, 0.0); ny];
        let cv = &dns.state().v()[r.clone()];
        ops.b2().matvec_complex(cv, &mut lap_v);
        ops.b0().matvec_complex(cv, &mut b0v);
        let want0 = h.hy[r.start] + dns.params().nu * (lap_v[0] - k2 * b0v[0]);
        worst = worst.max((slope0 - want0).norm());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::solver::run_serial;
    use crate::stats::profiles;

    #[test]
    fn laminar_flow_has_no_pressure_fluctuations() {
        let p = Params::channel(16, 25, 16, 50.0);
        let pp = run_serial(p, |dns| {
            dns.set_laminar(1.0);
            pressure_profiles(dns)
        });
        // parallel laminar flow: H vanishes identically, so does p
        assert!(pp.pp.iter().all(|&x| x.abs() < 1e-20));
        assert!(pp.p_mean.iter().all(|&x| x.abs() < 1e-10));
    }

    #[test]
    fn discrete_poisson_equation_is_satisfied() {
        let p = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let worst = run_serial(p, |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.3, 29);
            for _ in 0..3 {
                dns.step();
            }
            let h = nonlinear::quadratic_h(dns);
            let coef = pressure_from_h(dns, &h);
            let mut worst = 0.0f64;
            for m in 0..dns.local_modes() {
                if dns.is_nyquist(m) {
                    continue;
                }
                worst = worst.max(poisson_residual(dns, m, &coef, &h));
            }
            worst
        });
        assert!(worst < 1e-9, "Poisson residual {worst}");
    }

    #[test]
    fn batched_pressure_matches_scalar_oracle() {
        let p = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let worst = run_serial(p, |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.3, 17);
            for _ in 0..2 {
                dns.step();
            }
            let h = nonlinear::quadratic_h(dns);
            let batched = pressure_from_h(dns, &h);
            let scalar = pressure_from_h_scalar(dns, &h);
            batched
                .iter()
                .zip(&scalar)
                .map(|(b, s)| (b - s).norm() / (1.0 + s.norm()))
                .fold(0.0f64, f64::max)
        });
        assert!(worst < 1e-12, "batched pressure deviates: {worst}");
    }

    #[test]
    fn mean_pressure_balances_vv_in_sheared_flow() {
        // exact identity for channel flow: d<p>/dy = -d<v'v'>/dy, i.e.
        // <p>(y) + <v'v'>(y) is constant in y
        let p = Params::channel(16, 33, 16, 120.0).with_dt(5e-4);
        let (pp, prof) = run_serial(p, |dns| {
            dns.set_laminar(0.4);
            dns.add_perturbation(0.4, 41);
            for _ in 0..40 {
                dns.step();
            }
            (pressure_profiles(dns), profiles(dns))
        });
        let combo: Vec<f64> = pp.p_mean.iter().zip(&prof.vv).map(|(p, v)| p + v).collect();
        let c0 = combo[0];
        let scale = prof.vv.iter().cloned().fold(0.0, f64::max).max(1e-30);
        for (j, &c) in combo.iter().enumerate() {
            assert!(
                (c - c0).abs() < 0.05 * scale,
                "identity violated at j={j}: {c} vs {c0} (scale {scale})"
            );
        }
        // and the fluctuation variance is positive where turbulence lives
        assert!(pp.pp.iter().cloned().fold(0.0, f64::max) > 0.0);
    }
}
