//! Per-wavenumber wall-normal solves: the Helmholtz time advances, the
//! `v`-from-`phi` Poisson solve, and the influence-matrix enforcement of
//! the no-slip/no-penetration conditions `v(+-1) = v'(+-1) = 0`.
//!
//! Everything here runs through the corner-folded custom banded solver
//! (section 4.1.1 of the paper) on B-spline collocation operators; these
//! are the "three linear systems per wavenumber" of section 2.1.

use crate::rk3;
use crate::C64;
use dns_banded::{BatchedFactor, CornerBanded, CornerLu, RhsPanel, LANES};
use dns_bspline::CollocationOps;

/// Dot product of one stored row of a banded operator with a complex
/// coefficient vector (used for boundary-derivative evaluation).
pub fn row_dot_complex(m: &CornerBanded, row: usize, c: &[C64]) -> C64 {
    let ci = m.col_start(row);
    let mut s = C64::new(0.0, 0.0);
    for j in ci..(ci + m.width()).min(c.len()) {
        s += m.get(row, j) * c[j];
    }
    s
}

/// Derivative in coefficient space: coefficients of `df/dy` from
/// coefficients of `f` (`B0 c' = B1 c`).
pub fn dy_coefficients(ops: &CollocationOps, c: &[C64]) -> Vec<C64> {
    let mut out = vec![C64::new(0.0, 0.0); c.len()];
    let mut vals = vec![C64::new(0.0, 0.0); c.len()];
    dy_coefficients_into(ops, c, &mut out, &mut vals);
    out
}

/// [`dy_coefficients`] into caller-owned buffers (`vals` is overwritten
/// scratch of the same length) — the zero-allocation hot-path variant.
pub fn dy_coefficients_into(ops: &CollocationOps, c: &[C64], out: &mut [C64], vals: &mut [C64]) {
    ops.b1().matvec_complex(c, vals);
    ops.interpolate_complex_into(vals, out);
}

/// Influence-matrix data for one substep: two homogeneous Helmholtz
/// solutions (boundary Green's functions) and their induced `v` columns.
struct Greens {
    c_phi_a: Vec<f64>,
    c_phi_b: Vec<f64>,
    c_v_a: Vec<f64>,
    c_v_b: Vec<f64>,
    /// Inverse of the 2x2 wall-slope matrix `[vA'(-1) vB'(-1); vA'(1) vB'(1)]`.
    minv: [[f64; 2]; 2],
}

/// Factored operators for one `(kx, kz)` wavenumber (k^2 > 0).
pub struct ModeSolver {
    k2: f64,
    /// One Helmholtz factorisation per RK substep:
    /// `B0 + beta_i nu dt (k^2 B0 - B2)` with Dirichlet boundary rows.
    helm: [CornerLu; 3],
    /// Poisson operator `B2 - k^2 B0` with Dirichlet rows.
    pois: CornerLu,
    greens: [Greens; 3],
}

impl ModeSolver {
    /// Build the apparatus for one wavenumber.
    pub fn new(ops: &CollocationOps, k2: f64, nu: f64, dt: f64) -> ModeSolver {
        assert!(k2 > 0.0, "mode (0,0) uses MeanSolver");
        let n = ops.n();
        let helm: [CornerLu; 3] = std::array::from_fn(|i| {
            let c = rk3::BETA[i] * nu * dt;
            // B0 - c (B2 - k^2 B0) = (1 + c k^2) B0 - c B2
            let mut m = ops.combine(1.0 + c * k2, 0.0, -c);
            ops.set_boundary_row(&mut m, 0, -1.0, 0);
            ops.set_boundary_row(&mut m, n - 1, 1.0, 0);
            CornerLu::factor(m).expect("Helmholtz operator is nonsingular")
        });
        let mut pm = ops.combine(-k2, 0.0, 1.0);
        ops.set_boundary_row(&mut pm, 0, -1.0, 0);
        ops.set_boundary_row(&mut pm, n - 1, 1.0, 0);
        let pois = CornerLu::factor(pm).expect("Poisson operator is nonsingular");

        let greens = std::array::from_fn(|i| {
            let mut c_phi_a = vec![0.0; n];
            c_phi_a[0] = 1.0;
            helm[i].solve(&mut c_phi_a);
            let mut c_phi_b = vec![0.0; n];
            c_phi_b[n - 1] = 1.0;
            helm[i].solve(&mut c_phi_b);
            let solve_v = |c_phi: &[f64]| -> Vec<f64> {
                let mut rhs = vec![0.0; n];
                ops.b0().matvec(c_phi, &mut rhs);
                rhs[0] = 0.0;
                rhs[n - 1] = 0.0;
                pois.solve(&mut rhs);
                rhs
            };
            let c_v_a = solve_v(&c_phi_a);
            let c_v_b = solve_v(&c_phi_b);
            let slope = |c_v: &[f64], row: usize| -> f64 {
                let ci = ops.b1().col_start(row);
                (ci..(ci + ops.b1().width()).min(n))
                    .map(|j| ops.b1().get(row, j) * c_v[j])
                    .sum()
            };
            let m = [
                [slope(&c_v_a, 0), slope(&c_v_b, 0)],
                [slope(&c_v_a, n - 1), slope(&c_v_b, n - 1)],
            ];
            let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
            assert!(det.abs() > 1e-300, "singular influence matrix");
            let minv = [
                [m[1][1] / det, -m[0][1] / det],
                [-m[1][0] / det, m[0][0] / det],
            ];
            Greens {
                c_phi_a,
                c_phi_b,
                c_v_a,
                c_v_b,
                minv,
            }
        });
        ModeSolver {
            k2,
            helm,
            pois,
            greens,
        }
    }

    /// The squared horizontal wavenumber.
    pub fn k2(&self) -> f64 {
        self.k2
    }

    /// Advance one prognostic variable (`omega_y` or `phi`) through RK
    /// substep `i`: solve
    /// `(B0 - beta_i nu dt (B2 - k^2 B0)) c_new = rhs` with
    /// `rhs = B0 c + nu dt alpha_i (B2 - k^2 B0) c
    ///        + dt gamma_i n_new + dt zeta_i n_old`
    /// and homogeneous Dirichlet walls. `n_new`/`n_old` are nonlinear-term
    /// *values at the collocation points*.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &self,
        ops: &CollocationOps,
        i: usize,
        c: &mut [C64],
        n_new: &[C64],
        n_old: &[C64],
        nu: f64,
        dt: f64,
    ) {
        let n = c.len();
        let mut b0c = vec![C64::new(0.0, 0.0); n];
        let mut b2c = vec![C64::new(0.0, 0.0); n];
        self.advance_in(ops, i, c, n_new, n_old, nu, dt, &mut b0c, &mut b2c);
    }

    /// [`ModeSolver::advance`] with caller-owned `B0 c` / `B2 c` scratch
    /// (both overwritten) — the zero-allocation hot-path variant.
    #[allow(clippy::too_many_arguments)]
    pub fn advance_in(
        &self,
        ops: &CollocationOps,
        i: usize,
        c: &mut [C64],
        n_new: &[C64],
        n_old: &[C64],
        nu: f64,
        dt: f64,
        b0c: &mut [C64],
        b2c: &mut [C64],
    ) {
        let n = c.len();
        ops.b0().matvec_complex(c, b0c);
        ops.b2().matvec_complex(c, b2c);
        let a = nu * dt * rk3::ALPHA[i];
        let g = dt * rk3::GAMMA[i];
        let z = dt * rk3::ZETA[i];
        for j in 0..n {
            c[j] = b0c[j] + a * (b2c[j] - self.k2 * b0c[j]) + g * n_new[j] + z * n_old[j];
        }
        c[0] = C64::new(0.0, 0.0);
        c[n - 1] = C64::new(0.0, 0.0);
        self.helm[i].solve_complex(c);
    }

    /// Recover `v` from `phi` after substep `i`: solve the Dirichlet
    /// Poisson problem, then add the influence-matrix correction so that
    /// `v'(+-1) = 0` while `phi` keeps satisfying its Helmholtz equation
    /// (its wall values become the correction amplitudes). `c_phi` is
    /// updated in place; returns the coefficients of `v`.
    pub fn solve_v(&self, ops: &CollocationOps, i: usize, c_phi: &mut [C64]) -> Vec<C64> {
        let mut c_v = vec![C64::new(0.0, 0.0); c_phi.len()];
        self.solve_v_into(ops, i, c_phi, &mut c_v);
        c_v
    }

    /// [`ModeSolver::solve_v`] writing `v` into a caller-owned buffer —
    /// the zero-allocation hot-path variant.
    pub fn solve_v_into(&self, ops: &CollocationOps, i: usize, c_phi: &mut [C64], c_v: &mut [C64]) {
        let n = c_phi.len();
        ops.b0().matvec_complex(c_phi, c_v);
        c_v[0] = C64::new(0.0, 0.0);
        c_v[n - 1] = C64::new(0.0, 0.0);
        self.pois.solve_complex(c_v);
        // residual wall slopes
        let r0 = row_dot_complex(ops.b1(), 0, c_v);
        let r1 = row_dot_complex(ops.b1(), n - 1, c_v);
        let g = &self.greens[i];
        let a = -(g.minv[0][0] * r0 + g.minv[0][1] * r1);
        let b = -(g.minv[1][0] * r0 + g.minv[1][1] * r1);
        for j in 0..n {
            c_phi[j] += a * g.c_phi_a[j] + b * g.c_phi_b[j];
            c_v[j] += a * g.c_v_a[j] + b * g.c_v_b[j];
        }
    }
}

/// Panel analogue of [`dy_coefficients_into`]: derivative coefficients
/// of every column at once (`B0 c' = B1 c` swept as one panel against
/// the shared `B0` factors). `out` is overwritten.
pub fn dy_coefficients_panel(ops: &CollocationOps, c: &RhsPanel, out: &mut RhsPanel) {
    ops.b1().matvec_panel(c, out);
    ops.b0_lu().solve_panel(out);
}

/// The influence-matrix columns of a whole batch of modes, lane-packed:
/// `c_phi_a[(block*n + j)*LANES + lane]` mirrors the [`RhsPanel`]
/// layout so the correction loop is elementwise over lanes.
struct BatchGreens {
    c_phi_a: Vec<f64>,
    c_phi_b: Vec<f64>,
    c_v_a: Vec<f64>,
    c_v_b: Vec<f64>,
    /// Per-lane 2x2 inverse wall-slope matrices (identity in the padded
    /// lanes, whose slopes are always zero).
    minv: Vec<[[f64; 2]; 2]>,
}

/// The batched counterpart of a rank's worth of [`ModeSolver`]s: every
/// normal `(kx, kz)` mode's Helmholtz/Poisson factors packed into
/// [`BatchedFactor`]s (one per RK substep plus one Poisson), advanced by
/// whole-panel sweeps instead of per-mode scalar solves — the paper's
/// "many right-hand sides at once" amortisation (section 4.1.1) applied
/// to the DNS hot path.
pub struct BatchNormalSolver {
    width: usize,
    blocks: usize,
    /// Per-lane `k^2`, padded with 1.0 (padded lanes are never read back).
    k2: Vec<f64>,
    helm: [BatchedFactor; 3],
    pois: BatchedFactor,
    greens: [BatchGreens; 3],
}

impl BatchNormalSolver {
    /// Build and pack the apparatus for the given squared wavenumbers
    /// (one [`ModeSolver`] is constructed transiently per mode, so the
    /// factors and Green's functions are *identical* to the scalar
    /// path's; only their memory layout changes).
    pub fn new(ops: &CollocationOps, k2s: &[f64], nu: f64, dt: f64) -> BatchNormalSolver {
        assert!(!k2s.is_empty(), "empty batch");
        let n = ops.n();
        let width = k2s.len();
        let blocks = width.div_ceil(LANES);
        let solvers: Vec<ModeSolver> = k2s
            .iter()
            .map(|&k2| ModeSolver::new(ops, k2, nu, dt))
            .collect();
        let helm: [BatchedFactor; 3] = std::array::from_fn(|i| {
            let refs: Vec<&CornerLu> = solvers.iter().map(|s| &s.helm[i]).collect();
            BatchedFactor::pack(&refs)
        });
        let pois = {
            let refs: Vec<&CornerLu> = solvers.iter().map(|s| &s.pois).collect();
            BatchedFactor::pack(&refs)
        };
        let greens: [BatchGreens; 3] = std::array::from_fn(|i| {
            let mut g = BatchGreens {
                c_phi_a: vec![0.0; blocks * n * LANES],
                c_phi_b: vec![0.0; blocks * n * LANES],
                c_v_a: vec![0.0; blocks * n * LANES],
                c_v_b: vec![0.0; blocks * n * LANES],
                minv: vec![[[1.0, 0.0], [0.0, 1.0]]; blocks * LANES],
            };
            for (r, s) in solvers.iter().enumerate() {
                let (b, l) = (r / LANES, r % LANES);
                let sg = &s.greens[i];
                for j in 0..n {
                    let o = (b * n + j) * LANES + l;
                    g.c_phi_a[o] = sg.c_phi_a[j];
                    g.c_phi_b[o] = sg.c_phi_b[j];
                    g.c_v_a[o] = sg.c_v_a[j];
                    g.c_v_b[o] = sg.c_v_b[j];
                }
                g.minv[r] = sg.minv;
            }
            g
        });
        let mut k2 = vec![1.0; blocks * LANES];
        k2[..width].copy_from_slice(k2s);
        BatchNormalSolver {
            width,
            blocks,
            k2,
            helm,
            pois,
            greens,
        }
    }

    /// Number of batched modes (= panel width of every solve).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Panel analogue of [`ModeSolver::advance_in`]: advance one
    /// prognostic panel (`omega_y` or `phi` columns) through RK substep
    /// `i`. `b0c`/`b2c` are overwritten matvec scratch panels of the
    /// same shape.
    #[allow(clippy::too_many_arguments)]
    pub fn advance_panel(
        &self,
        ops: &CollocationOps,
        i: usize,
        c: &mut RhsPanel,
        n_new: &RhsPanel,
        n_old: &RhsPanel,
        nu: f64,
        dt: f64,
        b0c: &mut RhsPanel,
        b2c: &mut RhsPanel,
    ) {
        let n = ops.n();
        ops.b0().matvec_panel(c, b0c);
        ops.b2().matvec_panel(c, b2c);
        let a = nu * dt * rk3::ALPHA[i];
        let g = dt * rk3::GAMMA[i];
        let z = dt * rk3::ZETA[i];
        for b in 0..self.blocks {
            let k2 = &self.k2[b * LANES..][..LANES];
            for j in 0..n {
                let (b0r, b0i) = b0c.row(b, j);
                let (b2r, b2i) = b2c.row(b, j);
                let (nr, ni) = n_new.row(b, j);
                let (zr, zi) = n_old.row(b, j);
                let (cr, ci) = c.row_mut(b, j);
                for l in 0..LANES {
                    cr[l] = b0r[l] + a * (b2r[l] - k2[l] * b0r[l]) + g * nr[l] + z * zr[l];
                    ci[l] = b0i[l] + a * (b2i[l] - k2[l] * b0i[l]) + g * ni[l] + z * zi[l];
                }
            }
        }
        c.zero_row(0);
        c.zero_row(n - 1);
        self.helm[i].solve_panel(c);
    }

    /// Panel analogue of [`ModeSolver::solve_v_into`]: recover the `v`
    /// panel from the `phi` panel after substep `i`, applying the
    /// per-lane influence-matrix corrections so every column satisfies
    /// `v(+-1) = v'(+-1) = 0`. `c_phi` is corrected in place.
    pub fn solve_v_panel(
        &self,
        ops: &CollocationOps,
        i: usize,
        c_phi: &mut RhsPanel,
        c_v: &mut RhsPanel,
    ) {
        let n = ops.n();
        ops.b0().matvec_panel(c_phi, c_v);
        c_v.zero_row(0);
        c_v.zero_row(n - 1);
        self.pois.solve_panel(c_v);
        let b1 = ops.b1();
        let g = &self.greens[i];
        for b in 0..self.blocks {
            // residual wall slopes of every lane: rows 0 and n-1 of B1 c_v
            let mut s0 = [0.0f64; 2 * LANES]; // re | im
            let mut s1 = [0.0f64; 2 * LANES];
            for (row, s) in [(0, &mut s0), (n - 1, &mut s1)] {
                let ci = b1.col_start(row);
                for j in ci..(ci + b1.width()).min(n) {
                    let a = b1.get(row, j);
                    let (vr, vi) = c_v.row(b, j);
                    for l in 0..LANES {
                        s[l] += a * vr[l];
                        s[LANES + l] += a * vi[l];
                    }
                }
            }
            // correction amplitudes, lane-wise
            let mut ar = [0.0f64; LANES];
            let mut ai = [0.0f64; LANES];
            let mut br = [0.0f64; LANES];
            let mut bi = [0.0f64; LANES];
            for l in 0..LANES {
                let m = &g.minv[b * LANES + l];
                ar[l] = -(m[0][0] * s0[l] + m[0][1] * s1[l]);
                ai[l] = -(m[0][0] * s0[LANES + l] + m[0][1] * s1[LANES + l]);
                br[l] = -(m[1][0] * s0[l] + m[1][1] * s1[l]);
                bi[l] = -(m[1][0] * s0[LANES + l] + m[1][1] * s1[LANES + l]);
            }
            for j in 0..n {
                let o = (b * n + j) * LANES;
                let pa = &g.c_phi_a[o..o + LANES];
                let pb = &g.c_phi_b[o..o + LANES];
                let va = &g.c_v_a[o..o + LANES];
                let vb = &g.c_v_b[o..o + LANES];
                let (pr, pi) = c_phi.row_mut(b, j);
                for l in 0..LANES {
                    pr[l] += ar[l] * pa[l] + br[l] * pb[l];
                    pi[l] += ai[l] * pa[l] + bi[l] * pb[l];
                }
                let (vr, vi) = c_v.row_mut(b, j);
                for l in 0..LANES {
                    vr[l] += ar[l] * va[l] + br[l] * vb[l];
                    vi[l] += ai[l] * va[l] + bi[l] * vb[l];
                }
            }
        }
    }
}

/// Solver for the `(kx, kz) = (0, 0)` mean-flow modes: real Helmholtz
/// advances of `<u>(y)` and `<w>(y)` with Dirichlet walls.
pub struct MeanSolver {
    helm: [CornerLu; 3],
}

impl MeanSolver {
    /// Factor the three substep operators `B0 - beta_i nu dt B2`.
    pub fn new(ops: &CollocationOps, nu: f64, dt: f64) -> MeanSolver {
        let n = ops.n();
        let helm = std::array::from_fn(|i| {
            let c = rk3::BETA[i] * nu * dt;
            let mut m = ops.combine(1.0, 0.0, -c);
            ops.set_boundary_row(&mut m, 0, -1.0, 0);
            ops.set_boundary_row(&mut m, n - 1, 1.0, 0);
            CornerLu::factor(m).expect("mean Helmholtz nonsingular")
        });
        MeanSolver { helm }
    }

    /// Advance a mean profile through substep `i`. `n_new`/`n_old` are
    /// nonlinear+forcing values at the collocation points.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &self,
        ops: &CollocationOps,
        i: usize,
        c: &mut [f64],
        n_new: &[f64],
        n_old: &[f64],
        nu: f64,
        dt: f64,
    ) {
        let n = c.len();
        let mut b0c = vec![0.0; n];
        let mut b2c = vec![0.0; n];
        self.advance_in(ops, i, c, n_new, n_old, nu, dt, &mut b0c, &mut b2c);
    }

    /// [`MeanSolver::advance`] with caller-owned `B0 c` / `B2 c` scratch
    /// (both overwritten) — the zero-allocation hot-path variant.
    #[allow(clippy::too_many_arguments)]
    pub fn advance_in(
        &self,
        ops: &CollocationOps,
        i: usize,
        c: &mut [f64],
        n_new: &[f64],
        n_old: &[f64],
        nu: f64,
        dt: f64,
        b0c: &mut [f64],
        b2c: &mut [f64],
    ) {
        let n = c.len();
        ops.b0().matvec(c, b0c);
        ops.b2().matvec(c, b2c);
        let a = nu * dt * rk3::ALPHA[i];
        let g = dt * rk3::GAMMA[i];
        let z = dt * rk3::ZETA[i];
        for j in 0..n {
            c[j] = b0c[j] + a * b2c[j] + g * n_new[j] + z * n_old[j];
        }
        c[0] = 0.0;
        c[n - 1] = 0.0;
        self.helm[i].solve(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_bspline::{tanh_breakpoints, BsplineBasis};

    fn make_ops(ny: usize) -> CollocationOps {
        let basis = BsplineBasis::new(8, &tanh_breakpoints(ny - 7, 1.5));
        CollocationOps::new(&basis)
    }

    #[test]
    fn stokes_mode_decays_at_the_analytic_rate() {
        // omega(y, t) = sin(m pi (y+1)/2) exp(-nu (k^2 + (m pi/2)^2) t)
        let ops = make_ops(48);
        let n = ops.n();
        let nu = 0.05;
        let dt = 2e-3;
        let k2: f64 = 4.0;
        let ms = ModeSolver::new(&ops, k2, nu, dt);
        let m = 2.0;
        let lam = nu * (k2 + (m * std::f64::consts::FRAC_PI_2).powi(2));
        let profile: Vec<f64> = ops
            .points()
            .iter()
            .map(|&y| (m * std::f64::consts::FRAC_PI_2 * (y + 1.0)).sin())
            .collect();
        let mut c: Vec<C64> = ops
            .interpolate(&profile)
            .into_iter()
            .map(|v| C64::new(v, 0.0))
            .collect();
        let zero = vec![C64::new(0.0, 0.0); n];
        let steps = 50;
        for _ in 0..steps {
            for i in 0..3 {
                ms.advance(&ops, i, &mut c, &zero, &zero, nu, dt);
            }
        }
        let t = dt * steps as f64;
        let expect = (-lam * t).exp();
        // compare at a midpoint
        let got = ops
            .basis()
            .eval(&c.iter().map(|v| v.re).collect::<Vec<_>>(), 0.31)
            / (m * std::f64::consts::FRAC_PI_2 * 1.31).sin();
        assert!(
            (got - expect).abs() < 2e-5,
            "decay {got} vs analytic {expect}"
        );
    }

    #[test]
    fn solve_v_enforces_all_four_boundary_conditions() {
        let ops = make_ops(40);
        let n = ops.n();
        let ms = ModeSolver::new(&ops, 2.5, 0.01, 1e-2);
        // arbitrary complex phi
        let mut c_phi: Vec<C64> = (0..n)
            .map(|j| C64::new((j as f64 * 0.37).sin(), (j as f64 * 0.71).cos()))
            .collect();
        let c_v = ms.solve_v(&ops, 1, &mut c_phi);
        let re: Vec<f64> = c_v.iter().map(|v| v.re).collect();
        let im: Vec<f64> = c_v.iter().map(|v| v.im).collect();
        for part in [&re, &im] {
            assert!(ops.basis().eval(part, -1.0).abs() < 1e-10, "v(-1)=0");
            assert!(ops.basis().eval(part, 1.0).abs() < 1e-10, "v(1)=0");
            assert!(
                ops.basis().eval_deriv(part, -1.0, 1).abs() < 1e-8,
                "v'(-1)=0"
            );
            assert!(ops.basis().eval_deriv(part, 1.0, 1).abs() < 1e-8, "v'(1)=0");
        }
    }

    #[test]
    fn solve_v_satisfies_the_poisson_equation_in_the_interior() {
        let ops = make_ops(36);
        let n = ops.n();
        let k2 = 3.7;
        let ms = ModeSolver::new(&ops, k2, 0.02, 5e-3);
        let mut c_phi: Vec<C64> = (0..n)
            .map(|j| C64::new((j as f64 * 0.13).cos(), 0.2 * (j as f64 * 0.41).sin()))
            .collect();
        let phi_before = c_phi.clone();
        let c_v = ms.solve_v(&ops, 0, &mut c_phi);
        // (D2 - k^2) v = phi at interior collocation points, with the
        // *corrected* phi
        let n_pts = ops.n();
        let mut d2v = vec![C64::new(0.0, 0.0); n_pts];
        let mut b0v = vec![C64::new(0.0, 0.0); n_pts];
        let mut phi_vals = vec![C64::new(0.0, 0.0); n_pts];
        ops.b2().matvec_complex(&c_v, &mut d2v);
        ops.b0().matvec_complex(&c_v, &mut b0v);
        ops.b0().matvec_complex(&c_phi, &mut phi_vals);
        for j in 1..n_pts - 1 {
            let lhs = d2v[j] - k2 * b0v[j];
            assert!(
                (lhs - phi_vals[j]).norm() < 1e-8,
                "row {j}: {lhs} vs {}",
                phi_vals[j]
            );
        }
        // the correction only acts through the boundary rows of the
        // Helmholtz system: phi changed, but by a combination of the two
        // Green's columns only
        let delta_norm: f64 = c_phi
            .iter()
            .zip(&phi_before)
            .map(|(a, b)| (a - b).norm())
            .sum();
        assert!(delta_norm > 1e-12, "influence correction must engage");
    }

    #[test]
    fn batched_solver_matches_per_mode_solvers() {
        let ops = make_ops(33);
        let n = ops.n();
        let (nu, dt) = (0.02, 2e-3);
        // enough modes to exercise a partial last block
        let k2s: Vec<f64> = (0..11).map(|m| 0.5 + 1.7 * m as f64).collect();
        let batch = BatchNormalSolver::new(&ops, &k2s, nu, dt);
        let scalars: Vec<ModeSolver> = k2s
            .iter()
            .map(|&k2| ModeSolver::new(&ops, k2, nu, dt))
            .collect();
        let line = |r: usize, salt: f64| -> Vec<C64> {
            (0..n)
                .map(|j| {
                    let x = j as f64 * 0.29 + r as f64 * 1.3 + salt;
                    C64::new(x.sin(), (1.7 * x).cos())
                })
                .collect()
        };
        for i in 0..3 {
            let w = k2s.len();
            let mut pc = RhsPanel::new(n, w);
            let mut pn = RhsPanel::new(n, w);
            let mut po = RhsPanel::new(n, w);
            let mut pb0 = RhsPanel::new(n, w);
            let mut pb2 = RhsPanel::new(n, w);
            let mut pv = RhsPanel::new(n, w);
            for r in 0..w {
                pc.load_col(r, &line(r, 0.0));
                pn.load_col(r, &line(r, 0.4));
                po.load_col(r, &line(r, 0.8));
            }
            batch.advance_panel(&ops, i, &mut pc, &pn, &po, nu, dt, &mut pb0, &mut pb2);
            batch.solve_v_panel(&ops, i, &mut pc, &mut pv);
            for (r, ms) in scalars.iter().enumerate() {
                let mut c = line(r, 0.0);
                ms.advance(&ops, i, &mut c, &line(r, 0.4), &line(r, 0.8), nu, dt);
                let v = ms.solve_v(&ops, i, &mut c);
                for j in 0..n {
                    let scale = 1.0 + c[j].norm();
                    assert!(
                        (pc.at(j, r) - c[j]).norm() < 1e-12 * scale,
                        "substep {i} phi col {r} row {j}"
                    );
                    assert!(
                        (pv.at(j, r) - v[j]).norm() < 1e-12 * (1.0 + v[j].norm()),
                        "substep {i} v col {r} row {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn dy_panel_matches_scalar_derivative() {
        let ops = make_ops(28);
        let n = ops.n();
        let w = 5;
        let mut c = RhsPanel::new(n, w);
        let mut out = RhsPanel::new(n, w);
        let cols: Vec<Vec<C64>> = (0..w)
            .map(|r| {
                (0..n)
                    .map(|j| C64::new((j as f64 + r as f64).sin(), (j as f64 * 0.3).cos()))
                    .collect()
            })
            .collect();
        for (r, col) in cols.iter().enumerate() {
            c.load_col(r, col);
        }
        dy_coefficients_panel(&ops, &c, &mut out);
        for (r, col) in cols.iter().enumerate() {
            let want = dy_coefficients(&ops, col);
            for j in 0..n {
                assert!(
                    (out.at(j, r) - want[j]).norm() < 1e-12 * (1.0 + want[j].norm()),
                    "col {r} row {j}"
                );
            }
        }
    }

    #[test]
    fn mean_solver_holds_poiseuille_steady() {
        // nu u'' + F = 0 with u(+-1) = 0: u = F (1 - y^2) / (2 nu).
        let ops = make_ops(32);
        let nu = 0.1;
        let dt = 0.01;
        let f = 1.0;
        let msol = MeanSolver::new(&ops, nu, dt);
        let profile: Vec<f64> = ops
            .points()
            .iter()
            .map(|&y| f * (1.0 - y * y) / (2.0 * nu))
            .collect();
        let mut c = ops.interpolate(&profile);
        let forcing = vec![f; ops.n()];
        for _ in 0..20 {
            for i in 0..3 {
                msol.advance(&ops, i, &mut c, &forcing, &forcing, nu, dt);
            }
        }
        for (&y, want) in ops.points().iter().zip(&profile) {
            let got = ops.basis().eval(&c, y);
            assert!((got - want).abs() < 1e-9, "y={y}: {got} vs {want}");
        }
    }

    #[test]
    fn mean_flow_accelerates_from_rest_at_the_forcing_rate() {
        let ops = make_ops(32);
        let nu = 1e-4; // nearly inviscid: du/dt ~ F away from walls
        let dt = 1e-3;
        let msol = MeanSolver::new(&ops, nu, dt);
        let mut c = vec![0.0; ops.n()];
        let forcing = vec![2.0; ops.n()];
        let steps = 10;
        for _ in 0..steps {
            for i in 0..3 {
                msol.advance(&ops, i, &mut c, &forcing, &forcing, nu, dt);
            }
        }
        let u_mid = ops.basis().eval(&c, 0.0);
        let want = 2.0 * dt * steps as f64;
        assert!((u_mid - want).abs() < 1e-4, "{u_mid} vs {want}");
    }
}
