//! Field output for the paper's flow visualisations (figures 7-8):
//! physical-space gathering, spanwise-vorticity evaluation, and simple
//! portable-graymap / CSV writers.

use std::io::Write;
use std::path::Path;

use crate::solver::ChannelDns;
use crate::wallnormal::dy_coefficients;
use crate::C64;

/// A gathered physical-space scalar field with layout `[y][z][x]` on the
/// dealiased grid.
pub struct PhysicalField {
    /// Grid extents.
    pub ny: usize,
    /// Spanwise physical points.
    pub nz: usize,
    /// Streamwise physical points.
    pub nx: usize,
    /// Row-major `[y][z][x]` data.
    pub data: Vec<f64>,
}

impl PhysicalField {
    /// Value at `(y, z, x)`.
    pub fn at(&self, y: usize, z: usize, x: usize) -> f64 {
        self.data[(y * self.nz + z) * self.nx + x]
    }

    /// Extract an x-y slice at spanwise index `z` (rows = y).
    pub fn slice_xy(&self, z: usize) -> (usize, usize, Vec<f64>) {
        let mut out = Vec::with_capacity(self.ny * self.nx);
        for y in 0..self.ny {
            for x in 0..self.nx {
                out.push(self.at(y, z, x));
            }
        }
        (self.nx, self.ny, out)
    }

    /// Extract an x-z slice at wall-normal index `y` (rows = z).
    pub fn slice_xz(&self, y: usize) -> (usize, usize, Vec<f64>) {
        let mut out = Vec::with_capacity(self.nz * self.nx);
        for z in 0..self.nz {
            for x in 0..self.nx {
                out.push(self.at(y, z, x));
            }
        }
        (self.nx, self.nz, out)
    }
}

/// Inverse-transform a spectral coefficient field and gather the full
/// physical field on world rank (0, 0) of the process grid (collective;
/// returns `None` on other ranks). Intended for laptop-scale grids.
pub fn gather_physical(dns: &ChannelDns, coef_field: &[C64]) -> Option<PhysicalField> {
    let pfft = dns.pfft();
    let vals = dns.field_values(coef_field);
    let local = pfft.inverse(&vals); // x-pencil: [y_loc][z_loc][px]
    let px = pfft.config().px();
    let pz = pfft.config().pz();
    let ny = dns.params().ny;
    // gather z-blocks within CommA
    let a_parts = pfft.comm_a().gather(0, local);
    let yz_local: Option<Vec<f64>> = a_parts.map(|parts| {
        // parts[r] has [y_loc][zb_r][px]; interleave into [y_loc][z][px]
        let nyl = pfft.y_block().len;
        let mut out = vec![0.0; nyl * pz * px];
        for (r, part) in parts.iter().enumerate() {
            let zb = dns_pencil::Block::of(pz, pfft.config().pa, r);
            for yl in 0..nyl {
                for zl in 0..zb.len {
                    let src = (yl * zb.len + zl) * px;
                    let dst = (yl * pz + zb.start + zl) * px;
                    out[dst..dst + px].copy_from_slice(&part[src..src + px]);
                }
            }
        }
        out
    });
    // gather y-blocks within CommB (only CommA-rank-0 column participates
    // meaningfully, but gather is collective on CommB for all)
    let payload = yz_local.unwrap_or_default();
    let b_parts = pfft.comm_b().gather(0, payload);
    match b_parts {
        Some(parts) if pfft.comm_a().rank() == 0 => {
            let mut data = vec![0.0; ny * pz * px];
            for (r, part) in parts.iter().enumerate() {
                let yb = dns_pencil::Block::of(ny, pfft.config().pb, r);
                debug_assert_eq!(part.len(), yb.len * pz * px);
                for yl in 0..yb.len {
                    let src = yl * pz * px;
                    let dst = (yb.start + yl) * pz * px;
                    data[dst..dst + pz * px].copy_from_slice(&part[src..src + pz * px]);
                }
            }
            Some(PhysicalField {
                ny,
                nz: pz,
                nx: px,
                data,
            })
        }
        _ => None,
    }
}

/// Spectral coefficients of the spanwise vorticity
/// `omega_z = dv/dx - du/dy`.
pub fn omega_z_coefficients(dns: &ChannelDns) -> Vec<C64> {
    let ny = dns.params().ny;
    let mut out = vec![C64::new(0.0, 0.0); dns.field_len()];
    for m in 0..dns.local_modes() {
        let (ikx, _, _) = dns.mode_wavenumbers(m);
        let r = dns.line_range(m);
        let cu_y = dy_coefficients(dns.ops(), &dns.state().u()[r.clone()]);
        for j in 0..ny {
            out[r.start + j] = ikx * dns.state().v()[r.start + j] - cu_y[j];
        }
    }
    out
}

/// Write a 2D scalar as an 8-bit PGM image, min-max normalised.
pub fn write_pgm(path: &Path, width: usize, height: usize, data: &[f64]) -> std::io::Result<()> {
    assert_eq!(data.len(), width * height);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in data {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-300);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P5\n{width} {height}\n255")?;
    let bytes: Vec<u8> = data
        .iter()
        .map(|&v| (255.0 * (v - lo) / span).round() as u8)
        .collect();
    f.write_all(&bytes)?;
    f.flush()
}

/// Write named columns as CSV.
pub fn write_csv(path: &Path, columns: &[(&str, &[f64])]) -> std::io::Result<()> {
    let n = columns.first().map(|(_, c)| c.len()).unwrap_or(0);
    for (name, c) in columns {
        assert_eq!(c.len(), n, "column {name} length mismatch");
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let header: Vec<&str> = columns.iter().map(|(n, _)| *n).collect();
    writeln!(f, "{}", header.join(","))?;
    for i in 0..n {
        let row: Vec<String> = columns
            .iter()
            .map(|(_, c)| format!("{:.8e}", c[i]))
            .collect();
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()
}

/// Render a 2D scalar as coarse ASCII art (terminal visualisation used by
/// the figure-7/8 harnesses next to the PGM output).
pub fn ascii_art(width: usize, height: usize, data: &[f64], cols: usize, rows: usize) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in data {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-300);
    let mut s = String::with_capacity((cols + 1) * rows);
    for r in 0..rows {
        for c in 0..cols {
            let x = c * width / cols;
            let y = r * height / rows;
            let v = (data[y * width + x] - lo) / span;
            let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            s.push(SHADES[idx] as char);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::solver::run_parallel;

    #[test]
    fn gather_reconstructs_a_known_field() {
        // set a mean-only field: u = (1 - y^2); gathered physical u must
        // equal the profile at every (z, x)
        let p = Params::channel(16, 25, 16, 10.0).with_grid(2, 2);
        let fields = run_parallel(p, |dns| {
            dns.set_laminar(1.0);
            let pf = gather_physical(dns, dns.state().u());
            let pts = dns.ops().points().to_vec();
            (pf.map(|f| (f.ny, f.nz, f.nx, f.data)), pts, dns.params().nu)
        });
        let found: Vec<_> = fields.into_iter().filter(|(f, _, _)| f.is_some()).collect();
        assert_eq!(found.len(), 1, "exactly one rank gathers");
        let (f, pts, nu) = &found[0];
        let (ny, nz, nx, data) = f.as_ref().unwrap();
        assert_eq!(*ny, pts.len());
        for (yj, &y) in pts.iter().enumerate() {
            let want = (1.0 - y * y) / (2.0 * nu);
            for z in [0usize, nz / 2, nz - 1] {
                for x in [0usize, nx / 3, nx - 1] {
                    let got = data[(yj * nz + z) * nx + x];
                    assert!(
                        (got - want).abs() < 1e-8 * want.abs().max(1.0),
                        "y={y} z={z} x={x}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn omega_z_of_poiseuille_is_minus_dudy() {
        let p = Params::channel(16, 25, 16, 10.0);
        let ok = crate::solver::run_serial(p, |dns| {
            dns.set_laminar(1.0);
            let oz = omega_z_coefficients(dns);
            // mean mode: omega_z = -du/dy = -(-2y * Umax) = y / nu
            let mut ok = true;
            for m in 0..dns.local_modes() {
                if !dns.is_mean(m) {
                    continue;
                }
                let r = dns.line_range(m);
                let coef: Vec<f64> = oz[r].iter().map(|c| c.re).collect();
                for &y in &[-0.8, 0.0, 0.5] {
                    let got = dns.ops().basis().eval(&coef, y);
                    let want = y / dns.params().nu;
                    if (got - want).abs() > 1e-7 * want.abs().max(1.0) {
                        ok = false;
                    }
                }
            }
            ok
        });
        assert!(ok);
    }

    #[test]
    fn pgm_and_csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("dns_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let pgm = dir.join("t.pgm");
        write_pgm(&pgm, 4, 3, &data).unwrap();
        let bytes = std::fs::read(&pgm).unwrap();
        assert!(bytes.starts_with(b"P5\n4 3\n255\n"));
        assert_eq!(bytes.len(), 11 + 12);
        let csv = dir.join("t.csv");
        write_csv(&csv, &[("a", &data[..3]), ("b", &data[3..6])]).unwrap();
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn ascii_art_shapes() {
        let data = vec![0.0, 1.0, 1.0, 0.0];
        let art = ascii_art(2, 2, &data, 4, 2);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('@') && art.contains(' '));
    }
}
