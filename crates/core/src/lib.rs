//! Direct numerical simulation of incompressible turbulent channel flow —
//! the primary contribution of Lee, Malaya & Moser (SC'13).
//!
//! The solver advances the incompressible Navier-Stokes equations between
//! two parallel walls (figure 1 of the paper) in the velocity-vorticity
//! formulation of Kim, Moin & Moser (1987): for every horizontal Fourier
//! mode `(kx, kz)` the prognostic variables are the wall-normal vorticity
//! `omega_y` and `phi = laplacian(v)`, eliminating the pressure and
//! enforcing continuity by construction:
//!
//! ```text
//! d(omega_y)/dt = h_g + nu * laplacian(omega_y)
//! d(phi)/dt     = h_v + nu * laplacian(phi)
//! ```
//!
//! * Space: Fourier-Galerkin in x and z ([`dns_pfft`]), 7th-degree
//!   B-spline collocation in y ([`dns_bspline`]).
//! * Time: three-substep low-storage IMEX Runge-Kutta (Spalart, Moser &
//!   Rogers 1991): nonlinear terms explicit, viscous terms implicit.
//! * Each substep and wavenumber solves three banded systems via the
//!   corner-folded custom solver ([`dns_banded`]): Helmholtz advances for
//!   `omega_y` and `phi`, and the Poisson solve recovering `v`, with a
//!   precomputed two-column influence matrix enforcing both `v = 0` and
//!   `dv/dy = 0` at the walls.
//! * Nonlinear terms: divergence form, evaluated pseudo-spectrally on the
//!   3/2-dealiased grid through the full pencil-transpose pipeline of
//!   section 2.3 (steps (a)-(j)).
//!
//! # Example
//!
//! ```
//! use dns_core::{run_serial, Params};
//! use dns_core::stats::profiles;
//!
//! // a tiny channel at Re_tau = 50: a few steps through the full
//! // pipeline, then wall statistics
//! let params = Params::channel(16, 25, 16, 50.0).with_dt(1e-3);
//! let u_tau = run_serial(params, |dns| {
//!     dns.set_laminar(1.0); // exact laminar equilibrium
//!     for _ in 0..3 {
//!         dns.step();
//!     }
//!     profiles(dns).u_tau
//! });
//! // the laminar balance gives u_tau = 1 by construction
//! assert!((u_tau - 1.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
// Indexed loops mirror the textbook statements of the numerical
// algorithms (banded elimination, butterflies, stencils); iterator
// rewrites of these kernels obscure the maths without helping codegen.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::type_complexity)]

pub mod budget;
pub mod checkpoint;
pub mod headless;
pub mod health;
pub mod io;
#[deny(missing_docs)]
pub mod moser;
pub mod nonlinear;
pub mod orrsommerfeld;
pub mod params;
pub mod pressure;
pub mod refine;
pub mod rk3;
pub mod run;
pub mod solver;
#[deny(missing_docs)]
pub mod spectra;
#[deny(missing_docs)]
pub mod stats;
pub mod vorticity;
pub mod wallnormal;

pub use params::{Forcing, Params};
pub use solver::{run_parallel, run_serial, ChannelDns, State};

/// Complex double-precision scalar alias shared across the stack.
pub type C64 = num_complex::Complex<f64>;
