//! Checkpoint/restart: binary snapshots of the spectral state, one file
//! per rank — the restart capability any 650,000-step production run
//! (section 6 of the paper) depends on.
//!
//! # Format (version 2, little-endian)
//!
//! Per-rank record:
//!
//! ```text
//! magic        u64   "CNDSKPT2"
//! version      u64   2
//! params_hash  u64   Params::state_hash() — physics digest
//! pa, pb       u64   process grid the run was decomposed on
//! a, b         u64   this rank's grid coordinates
//! nx, ny, nz   u64   spectral grid
//! step         u64   completed timesteps
//! time         f64   simulation time
//! dyn_force    f64   mass-flux controller output
//! flux_int     f64   mass-flux controller integral state
//! field_len    u64   complex coefficients per field on this rank
//! 5 fields     field_len x (re f64, im f64) — u, v, w, omega_y, phi
//! [stats]      optional statistics section (see below)
//! crc          u32   CRC-32 of every preceding byte
//! ```
//!
//! When the run collects time-averaged turbulence statistics
//! ([`ChannelDns::stats`]), the accumulator's byte-exact serialization
//! ([`crate::stats::StatsAccumulator::encode`], opening with its own
//! `"DNSSTAT1"` magic) rides between the fields and the CRC, so a
//! restart resumes averaging exactly where the crashed run stopped.
//! Records without the section (all pre-statistics files, and runs with
//! stats off) load unchanged — the section is strictly additive and the
//! version word stays 2.
//!
//! Every header field the running solver can disagree with is validated
//! on load and surfaced as a typed [`CheckpointError`]; the trailing CRC
//! catches truncation and bit rot before any of that parsing is trusted.
//! Writes go to a `.tmp` sibling and are renamed into place, so a crash
//! mid-write can never leave a half-written file under the real name.
//!
//! # Manifest layer
//!
//! A single rank file is not a checkpoint — a restartable state is *all*
//! `pa x pb` files from the same step. [`save_with_manifest`] writes
//! per-rank records under generation stems (`<stem>.s<step>.r<a>x<b>.ckpt`),
//! gathers every rank's CRC to grid rank (0,0), writes
//! `<stem>.s<step>.manifest` listing them, and atomically flips a
//! `<stem>.latest` pointer — which is the commit point: a crash at any
//! earlier moment leaves the previous generation intact and pointed-to.
//! [`load_latest`] follows the pointer and validates this rank's record
//! against the manifest entry. The last two generations are kept (the
//! newest may be the one a crash interrupted mid-gather; the one before
//! is then still complete).

use std::path::{Path, PathBuf};

use dns_resilience::crc32;

use crate::solver::ChannelDns;
use crate::C64;

const MAGIC: u64 = 0x434E_4453_4B50_5432; // "CNDSKPT2"
const VERSION: u64 = 2;
/// Header words before the fields: magic..field_len inclusive
/// (magic, version, params_hash, pa, pb, a, b, nx, ny, nz, step, time,
/// dyn_force, flux_integral, field_len).
const HEADER_U64S: usize = 15;

/// Why a checkpoint could not be written or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but does not carry the checkpoint magic.
    NotACheckpoint {
        /// Offending file.
        path: PathBuf,
    },
    /// A checkpoint, but from an incompatible format version.
    Version {
        /// Offending file.
        path: PathBuf,
        /// Version word found in the file.
        found: u64,
    },
    /// Header field disagrees with the running configuration.
    Mismatch {
        /// Which header field disagreed.
        what: &'static str,
        /// Value in the file.
        found: u64,
        /// Value the running solver expects.
        expected: u64,
    },
    /// The stored CRC does not match the bytes (truncation / bit rot).
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// CRC recorded in the file (or manifest entry).
        stored: u32,
        /// CRC computed over the bytes actually read.
        computed: u32,
    },
    /// The manifest exists but is malformed or fails its own CRC.
    Manifest {
        /// Offending manifest.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// No `<stem>.latest` pointer — nothing to restart from.
    NoManifest {
        /// The checkpoint stem that has no committed generation.
        stem: PathBuf,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::NotACheckpoint { path } => {
                write!(f, "{} is not a channel-dns checkpoint", path.display())
            }
            CheckpointError::Version { path, found } => write!(
                f,
                "{}: unsupported checkpoint version {found} (expected {VERSION})",
                path.display()
            ),
            CheckpointError::Mismatch {
                what,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {what} mismatch: file has {found:#x}, run expects {expected:#x}"
            ),
            CheckpointError::Corrupt {
                path,
                stored,
                computed,
            } => write!(
                f,
                "{} is corrupt: stored CRC {stored:#010x}, computed {computed:#010x}",
                path.display()
            ),
            CheckpointError::Manifest { path, reason } => {
                write!(f, "bad manifest {}: {reason}", path.display())
            }
            CheckpointError::NoManifest { stem } => write!(
                f,
                "no checkpoint manifest found for stem {}",
                stem.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Receipt for one written rank record.
#[derive(Clone, Debug)]
pub struct RankCkpt {
    /// Final (renamed) path of the record.
    pub path: PathBuf,
    /// CRC-32 sealed into the record (also the manifest entry).
    pub crc: u32,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// Per-rank checkpoint path: `<stem>.r<a>x<b>.ckpt`.
pub fn rank_path(stem: &Path, dns: &ChannelDns) -> PathBuf {
    let a = dns.pfft().comm_a().rank();
    let b = dns.pfft().comm_b().rank();
    stem.with_extension(format!("r{a}x{b}.ckpt"))
}

fn gen_rank_path(stem: &Path, step: u64, a: usize, b: usize) -> PathBuf {
    stem.with_extension(format!("s{step}.r{a}x{b}.ckpt"))
}

fn manifest_path(stem: &Path, step: u64) -> PathBuf {
    stem.with_extension(format!("s{step}.manifest"))
}

fn latest_path(stem: &Path) -> PathBuf {
    stem.with_extension("latest")
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Serialise this rank's full record (header + fields + trailing CRC).
fn encode(dns: &ChannelDns) -> Vec<u8> {
    let p = dns.params();
    let len = dns.field_len();
    let mut buf = Vec::with_capacity(HEADER_U64S * 8 + 5 * len * 16 + 4);
    put_u64(&mut buf, MAGIC);
    put_u64(&mut buf, VERSION);
    put_u64(&mut buf, p.state_hash());
    for v in [
        p.pa,
        p.pb,
        dns.pfft().comm_a().rank(),
        dns.pfft().comm_b().rank(),
        p.nx,
        p.ny,
        p.nz,
    ] {
        put_u64(&mut buf, v as u64);
    }
    put_u64(&mut buf, dns.state().steps);
    put_f64(&mut buf, dns.state().time);
    let (dyn_force, flux_integral) = dns.controller_state();
    put_f64(&mut buf, dyn_force);
    put_f64(&mut buf, flux_integral);
    put_u64(&mut buf, len as u64);
    for f in [
        dns.state().u(),
        dns.state().v(),
        dns.state().w(),
        dns.state().omega_y(),
        dns.state().phi(),
    ] {
        for c in f {
            put_f64(&mut buf, c.re);
            put_f64(&mut buf, c.im);
        }
    }
    if let Some(acc) = dns.stats() {
        buf.extend_from_slice(&acc.encode());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Write `bytes` to `path` atomically: a `.tmp` sibling first, then a
/// rename. A crash between the two leaves only the sibling behind; the
/// real name either holds the previous complete file or the new one.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Write this rank's state to `path` and return its receipt.
fn save_to(dns: &ChannelDns, path: &Path) -> Result<RankCkpt, CheckpointError> {
    let buf = encode(dns);
    write_atomic(path, &buf)?;
    let crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
    Ok(RankCkpt {
        path: path.to_path_buf(),
        crc,
        bytes: buf.len() as u64,
    })
}

/// Write this rank's state to `<stem>.r<a>x<b>.ckpt` (atomic).
pub fn save(dns: &ChannelDns, stem: &Path) -> Result<RankCkpt, CheckpointError> {
    save_to(dns, &rank_path(stem, dns))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }
    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }
}

/// Validate and apply a serialised record to the running solver.
fn decode(dns: &mut ChannelDns, path: &Path, buf: &[u8]) -> Result<(), CheckpointError> {
    // integrity first: nothing in the file is trusted until the CRC holds
    if buf.len() < HEADER_U64S * 8 + 4 {
        return Err(CheckpointError::NotACheckpoint {
            path: path.to_path_buf(),
        });
    }
    let (body, tail) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().unwrap());
    let computed = crc32(body);
    if stored != computed {
        return Err(CheckpointError::Corrupt {
            path: path.to_path_buf(),
            stored,
            computed,
        });
    }
    let mut c = Cursor { buf: body, pos: 0 };
    if c.u64() != MAGIC {
        return Err(CheckpointError::NotACheckpoint {
            path: path.to_path_buf(),
        });
    }
    let version = c.u64();
    if version != VERSION {
        return Err(CheckpointError::Version {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let p = dns.params().clone();
    let expect_hash = p.state_hash();
    let found_hash = c.u64();
    if found_hash != expect_hash {
        return Err(CheckpointError::Mismatch {
            what: "params hash",
            found: found_hash,
            expected: expect_hash,
        });
    }
    let checks: [(&'static str, usize); 7] = [
        ("process grid pa", p.pa),
        ("process grid pb", p.pb),
        ("rank coordinate a", dns.pfft().comm_a().rank()),
        ("rank coordinate b", dns.pfft().comm_b().rank()),
        ("grid nx", p.nx),
        ("grid ny", p.ny),
        ("grid nz", p.nz),
    ];
    for (what, expected) in checks {
        let found = c.u64();
        if found != expected as u64 {
            return Err(CheckpointError::Mismatch {
                what,
                found,
                expected: expected as u64,
            });
        }
    }
    let steps = c.u64();
    let time = c.f64();
    let dyn_force = c.f64();
    let flux_integral = c.f64();
    let len = c.u64() as usize;
    let expect_len = dns.field_len();
    if len != expect_len {
        return Err(CheckpointError::Mismatch {
            what: "field length",
            found: len as u64,
            expected: expect_len as u64,
        });
    }
    let base = HEADER_U64S * 8 + 5 * len * 16;
    if body.len() < base {
        return Err(CheckpointError::Corrupt {
            path: path.to_path_buf(),
            stored,
            computed: stored ^ 1, // length lies even though CRC held: impossible unless crafted
        });
    }
    // anything past the fields must be a well-formed stats section
    // (records without one are the pre-statistics layout and load as-is)
    let stats = match &body[base..] {
        [] => None,
        rest => Some(crate::stats::StatsAccumulator::decode(rest).ok_or_else(|| {
            CheckpointError::Corrupt {
                path: path.to_path_buf(),
                stored,
                computed: stored ^ 1,
            }
        })?),
    };
    let mut fields = Vec::with_capacity(5);
    for _ in 0..5 {
        let mut f = Vec::with_capacity(len);
        for _ in 0..len {
            let re = c.f64();
            let im = c.f64();
            f.push(C64::new(re, im));
        }
        fields.push(f);
    }
    let phi = fields.pop().unwrap();
    let omega_y = fields.pop().unwrap();
    let w = fields.pop().unwrap();
    let v = fields.pop().unwrap();
    let u = fields.pop().unwrap();
    dns.restore_state(u, v, w, omega_y, phi, time, steps);
    dns.restore_controller(dyn_force, flux_integral);
    if let Some(acc) = stats {
        dns.restore_stats(acc);
    }
    Ok(())
}

/// Load this rank's state from `path`, validating CRC and every header
/// field against the running configuration.
fn load_from(dns: &mut ChannelDns, path: &Path) -> Result<(), CheckpointError> {
    let buf = std::fs::read(path)?;
    decode(dns, path, &buf)
}

/// Load this rank's state from `<stem>.r<a>x<b>.ckpt`.
pub fn load(dns: &mut ChannelDns, stem: &Path) -> Result<(), CheckpointError> {
    let path = rank_path(stem, dns);
    load_from(dns, &path)
}

/// How many checkpoint generations [`save_with_manifest`] retains.
const KEEP_GENERATIONS: usize = 2;

/// Collective checkpoint over the whole process grid: every rank writes
/// its generation record, rank (0,0) gathers all CRCs, writes the
/// manifest, and flips the `<stem>.latest` pointer (the commit point).
/// Returns the manifest path on grid rank (0,0), `None` elsewhere.
///
/// No rank returns before the manifest is durable, so a crash *after*
/// this call can always restart from the generation it wrote; a crash
/// *during* it leaves the previous `.latest` target intact.
pub fn save_with_manifest(
    dns: &ChannelDns,
    stem: &Path,
) -> Result<Option<PathBuf>, CheckpointError> {
    let step = dns.state().steps;
    let comm_a = dns.pfft().comm_a();
    let comm_b = dns.pfft().comm_b();
    let (a, b) = (comm_a.rank(), comm_b.rank());
    let receipt = save_to(dns, &gen_rank_path(stem, step, a, b))?;

    // two-stage gather of (a, b, crc, bytes) onto grid rank (0,0):
    // along comm_a to each (0, b), then along comm_b to (0, 0)
    let entry = vec![a as u64, b as u64, receipt.crc as u64, receipt.bytes];
    let column = comm_a.gather(0, entry);
    let mut manifest = None;
    if a == 0 {
        let flat: Vec<u64> = column.expect("comm_a root").into_iter().flatten().collect();
        let rows = comm_b.gather(0, flat);
        if b == 0 {
            let entries: Vec<u64> = rows.expect("comm_b root").into_iter().flatten().collect();
            let path = write_manifest(dns, stem, step, &entries)?;
            write_atomic(
                &latest_path(stem),
                path.file_name()
                    .expect("manifest has a file name")
                    .to_string_lossy()
                    .as_bytes(),
            )?;
            prune_generations(stem, step);
            manifest = Some(path);
        }
        // holds the a == 0 row until the pointer flip is durable
        comm_b.barrier();
    }
    // holds every column until its a == 0 member has passed the flip
    comm_a.barrier();
    Ok(manifest)
}

/// Write `<stem>.s<step>.manifest` (atomic). `entries` is a flat
/// `[a, b, crc, bytes]` quadruple per rank.
fn write_manifest(
    dns: &ChannelDns,
    stem: &Path,
    step: u64,
    entries: &[u64],
) -> Result<PathBuf, CheckpointError> {
    let p = dns.params();
    let mut text = String::new();
    text.push_str("channel-dns manifest v2\n");
    text.push_str(&format!("params_hash {:016x}\n", p.state_hash()));
    text.push_str(&format!("step {step}\n"));
    text.push_str(&format!("time_bits {:016x}\n", dns.state().time.to_bits()));
    text.push_str(&format!("grid {} {} {}\n", p.nx, p.ny, p.nz));
    text.push_str(&format!("layout {} {}\n", p.pa, p.pb));
    let mut quads: Vec<&[u64]> = entries.chunks_exact(4).collect();
    quads.sort_by_key(|q| (q[0], q[1]));
    if quads.len() != p.pa * p.pb {
        return Err(CheckpointError::Manifest {
            path: manifest_path(stem, step),
            reason: format!(
                "gathered {} rank entries, expected {}",
                quads.len(),
                p.pa * p.pb
            ),
        });
    }
    for q in quads {
        text.push_str(&format!(
            "rank {} {} {:08x} {}\n",
            q[0], q[1], q[2] as u32, q[3]
        ));
    }
    text.push_str(&format!("crc {:08x}\n", crc32(text.as_bytes())));
    let path = manifest_path(stem, step);
    write_atomic(&path, text.as_bytes())?;
    Ok(path)
}

/// Best-effort removal of generations older than the `KEEP_GENERATIONS`
/// newest. Failures are ignored: pruning is hygiene, not correctness.
fn prune_generations(stem: &Path, current_step: u64) {
    let Some(dir) = stem.parent() else { return };
    let Some(base) = stem.file_stem().and_then(|s| s.to_str()) else {
        return;
    };
    let Ok(listing) = std::fs::read_dir(dir) else {
        return;
    };
    let mut steps: Vec<u64> = Vec::new();
    for entry in listing.flatten() {
        if let Some(step) =
            parse_generation(&entry.file_name().to_string_lossy(), base, ".manifest")
        {
            steps.push(step);
        }
    }
    steps.sort_unstable();
    steps.dedup();
    let cutoff_index = steps.len().saturating_sub(KEEP_GENERATIONS);
    let stale: Vec<u64> = steps[..cutoff_index]
        .iter()
        .copied()
        .filter(|&s| s != current_step)
        .collect();
    if stale.is_empty() {
        return;
    }
    let Ok(listing) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in listing.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        let step = parse_generation(&name, base, ".manifest")
            .or_else(|| parse_generation_ckpt(&name, base));
        if let Some(s) = step {
            if stale.contains(&s) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// Parse `<base>.s<step><suffix>` → step.
fn parse_generation(name: &str, base: &str, suffix: &str) -> Option<u64> {
    let rest = name.strip_prefix(base)?.strip_prefix(".s")?;
    rest.strip_suffix(suffix)?.parse().ok()
}

/// Parse `<base>.s<step>.r<a>x<b>.ckpt` → step.
fn parse_generation_ckpt(name: &str, base: &str) -> Option<u64> {
    let rest = name.strip_prefix(base)?.strip_prefix(".s")?;
    let (step, tail) = rest.split_once(".r")?;
    if !tail.ends_with(".ckpt") {
        return None;
    }
    step.parse().ok()
}

/// Restore this rank from the newest committed generation: follow
/// `<stem>.latest` to the manifest, validate the manifest's own CRC and
/// headers, then load this rank's record and cross-check its CRC against
/// the manifest entry. Purely local — every rank reads independently, so
/// it is safe on restart paths where collective order is not yet
/// re-established. Returns the restored step.
pub fn load_latest(dns: &mut ChannelDns, stem: &Path) -> Result<u64, CheckpointError> {
    let pointer = latest_path(stem);
    let name = match std::fs::read_to_string(&pointer) {
        Ok(s) => s.trim().to_string(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CheckpointError::NoManifest {
                stem: stem.to_path_buf(),
            })
        }
        Err(e) => return Err(e.into()),
    };
    let dir = stem.parent().unwrap_or_else(|| Path::new("."));
    let mpath = dir.join(&name);
    let text = std::fs::read_to_string(&mpath)?;
    let bad = |reason: &str| CheckpointError::Manifest {
        path: mpath.clone(),
        reason: reason.to_string(),
    };

    // validate the manifest's own trailing CRC line
    let body_end = text
        .trim_end_matches('\n')
        .rfind('\n')
        .ok_or_else(|| bad("too short"))?
        + 1;
    let (body, crc_line) = text.split_at(body_end);
    let stored = crc_line
        .trim()
        .strip_prefix("crc ")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| bad("missing crc line"))?;
    let computed = crc32(body.as_bytes());
    if stored != computed {
        return Err(CheckpointError::Corrupt {
            path: mpath,
            stored,
            computed,
        });
    }

    let mut lines = body.lines();
    if lines.next() != Some("channel-dns manifest v2") {
        return Err(bad("bad header line"));
    }
    let mut params_hash = None;
    let mut step = None;
    let mut rank_entries: Vec<(u64, u64, u32, u64)> = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("params_hash") => {
                params_hash = parts.next().and_then(|h| u64::from_str_radix(h, 16).ok());
            }
            Some("step") => step = parts.next().and_then(|s| s.parse().ok()),
            Some("rank") => {
                let vals: Vec<&str> = parts.collect();
                if vals.len() != 4 {
                    return Err(bad("malformed rank line"));
                }
                let a = vals[0].parse().map_err(|_| bad("bad rank a"))?;
                let b = vals[1].parse().map_err(|_| bad("bad rank b"))?;
                let crc = u32::from_str_radix(vals[2], 16).map_err(|_| bad("bad rank crc"))?;
                let bytes = vals[3].parse().map_err(|_| bad("bad rank size"))?;
                rank_entries.push((a, b, crc, bytes));
            }
            _ => {} // time_bits / grid / layout are informational here
        }
    }
    let params_hash = params_hash.ok_or_else(|| bad("missing params_hash"))?;
    let step = step.ok_or_else(|| bad("missing step"))?;
    let expect_hash = dns.params().state_hash();
    if params_hash != expect_hash {
        return Err(CheckpointError::Mismatch {
            what: "params hash",
            found: params_hash,
            expected: expect_hash,
        });
    }
    let (a, b) = (
        dns.pfft().comm_a().rank() as u64,
        dns.pfft().comm_b().rank() as u64,
    );
    let &(_, _, want_crc, want_bytes) = rank_entries
        .iter()
        .find(|&&(ea, eb, _, _)| ea == a && eb == b)
        .ok_or_else(|| bad("no entry for this rank"))?;

    let rpath = gen_rank_path(stem, step, a as usize, b as usize);
    let buf = std::fs::read(&rpath)?;
    if buf.len() as u64 != want_bytes {
        return Err(CheckpointError::Corrupt {
            path: rpath,
            stored: want_crc,
            computed: crc32(&buf[..buf.len().saturating_sub(4)]),
        });
    }
    let record_crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
    if record_crc != want_crc {
        return Err(CheckpointError::Corrupt {
            path: rpath,
            stored: want_crc,
            computed: record_crc,
        });
    }
    decode(dns, &rpath, &buf)?;
    if dns.state().steps != step {
        return Err(CheckpointError::Mismatch {
            what: "manifest step",
            found: dns.state().steps,
            expected: step,
        });
    }
    Ok(step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Forcing, Params};
    use crate::solver::run_parallel;
    use crate::stats::profiles;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        let stem = test_dir("dns_ckpt_test").join("state");
        let p = Params::channel(16, 25, 16, 80.0)
            .with_dt(1e-3)
            .with_grid(2, 2);

        // run 6 steps straight through
        let reference = run_parallel(p.clone(), |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.3, 21);
            for _ in 0..6 {
                dns.step();
            }
            profiles(dns).u_mean
        });

        // run 3 steps, checkpoint, reload into a fresh solver, run 3 more
        let stem2 = stem.clone();
        let p2 = p.clone();
        let resumed = run_parallel(p, move |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.3, 21);
            for _ in 0..3 {
                dns.step();
            }
            save(dns, &stem2).unwrap();
        });
        drop(resumed);
        let stem3 = stem.clone();
        let resumed = run_parallel(p2, move |dns| {
            load(dns, &stem3).unwrap();
            assert_eq!(dns.state().steps, 3);
            for _ in 0..3 {
                dns.step();
            }
            profiles(dns).u_mean
        });

        for (a, b) in reference[0].iter().zip(&resumed[0]) {
            assert!((a - b).abs() < 1e-14, "{a} vs {b}");
        }
    }

    #[test]
    fn stats_section_rides_the_checkpoint_bitwise() {
        use crate::stats::{StatsAccumulator, StatsConfig};
        let stem = test_dir("dns_ckpt_stats").join("state");
        let p = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);

        // run with statistics on, checkpoint mid-window
        let stem2 = stem.clone();
        let encoded = crate::solver::run_serial(p.clone(), move |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.3, 21);
            dns.enable_stats(StatsConfig {
                every: 2,
                warmup: 1,
            });
            for _ in 0..5 {
                dns.step();
            }
            save(dns, &stem2).unwrap();
            dns.stats().unwrap().encode()
        });
        let acc = StatsAccumulator::decode(&encoded).unwrap();
        assert_eq!(acc.count(), 2); // steps 3 and 5

        // a fresh solver without stats enabled restores the accumulator
        // from the file alone, bit-for-bit — this is the fix for the old
        // "averaging silently restarts from zero on resume" behavior
        let stem3 = stem.clone();
        let restored = crate::solver::run_serial(p.clone(), move |dns| {
            assert!(dns.stats().is_none());
            load(dns, &stem3).unwrap();
            dns.stats().unwrap().encode()
        });
        assert_eq!(restored, encoded);

        // a record without the section (stats off) still loads, and
        // leaves the solver's stats state untouched
        let stem4 = test_dir("dns_ckpt_stats_legacy").join("state");
        let stem5 = stem4.clone();
        crate::solver::run_serial(p.clone(), move |dns| {
            save(dns, &stem5).unwrap();
        });
        let stem6 = stem4.clone();
        crate::solver::run_serial(p, move |dns| {
            load(dns, &stem6).unwrap();
            assert!(dns.stats().is_none());
        });
    }

    #[test]
    fn grid_mismatch_is_rejected_with_typed_error() {
        let stem = test_dir("dns_ckpt_test2").join("state");
        let stem2 = stem.clone();
        crate::solver::run_serial(Params::channel(16, 25, 16, 80.0), move |dns| {
            save(dns, &stem2).unwrap();
        });
        let stem3 = stem.clone();
        crate::solver::run_serial(Params::channel(32, 25, 16, 80.0), move |dns| {
            // nx differs → params hash differs, caught before the grid words
            match load(dns, &stem3).unwrap_err() {
                CheckpointError::Mismatch { what, .. } => assert_eq!(what, "params hash"),
                other => panic!("expected Mismatch, got {other}"),
            }
        });
    }

    #[test]
    fn physics_change_is_rejected_even_on_same_grid() {
        let stem = test_dir("dns_ckpt_test3").join("state");
        let stem2 = stem.clone();
        crate::solver::run_serial(Params::channel(16, 25, 16, 80.0), move |dns| {
            save(dns, &stem2).unwrap();
        });
        let stem3 = stem.clone();
        let mut p = Params::channel(16, 25, 16, 80.0);
        p.forcing = Forcing::ConstantMassFlux { bulk: 0.5 };
        crate::solver::run_serial(p, move |dns| match load(dns, &stem3).unwrap_err() {
            CheckpointError::Mismatch { what, .. } => assert_eq!(what, "params hash"),
            other => panic!("expected Mismatch, got {other}"),
        });
    }

    #[test]
    fn corruption_is_detected_before_any_state_is_trusted() {
        let stem = test_dir("dns_ckpt_test4").join("state");
        let stem2 = stem.clone();
        crate::solver::run_serial(Params::channel(16, 25, 16, 80.0), move |dns| {
            let receipt = save(dns, &stem2).unwrap();
            // flip one byte in the middle of a field
            let mut bytes = std::fs::read(&receipt.path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&receipt.path, &bytes).unwrap();
        });
        let stem3 = stem.clone();
        crate::solver::run_serial(Params::channel(16, 25, 16, 80.0), move |dns| {
            match load(dns, &stem3).unwrap_err() {
                CheckpointError::Corrupt { .. } => {}
                other => panic!("expected Corrupt, got {other}"),
            }
        });
        // truncation likewise
        let stem4 = stem.clone();
        crate::solver::run_serial(Params::channel(16, 25, 16, 80.0), move |dns| {
            let path = rank_path(&stem4, dns);
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() - 100]).unwrap();
            match load(dns, &stem4).unwrap_err() {
                CheckpointError::Corrupt { .. } => {}
                other => panic!("expected Corrupt, got {other}"),
            }
        });
    }

    #[test]
    fn saves_are_atomic_no_tmp_left_behind() {
        let dir = test_dir("dns_ckpt_test5");
        let stem = dir.join("state");
        let stem2 = stem.clone();
        crate::solver::run_serial(Params::channel(16, 25, 16, 80.0), move |dns| {
            save(dns, &stem2).unwrap();
        });
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
            .collect();
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "tmp sibling left behind: {names:?}"
        );
        assert!(names.iter().any(|n| n.ends_with(".ckpt")));
    }

    #[test]
    fn manifest_roundtrip_and_pruning() {
        let dir = test_dir("dns_ckpt_test6");
        let stem = dir.join("state");
        let p = Params::channel(16, 25, 16, 80.0)
            .with_dt(1e-3)
            .with_grid(2, 2);

        let stem2 = stem.clone();
        run_parallel(p.clone(), move |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.3, 21);
            // three generations: steps 1, 2, 3
            for _ in 0..3 {
                dns.step();
                save_with_manifest(dns, &stem2).unwrap();
            }
        });

        // oldest generation pruned, last two kept
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
            .collect();
        assert!(
            !names.iter().any(|n| n.contains(".s1.")),
            "generation 1 should be pruned: {names:?}"
        );
        assert!(names.iter().any(|n| n.contains(".s2.manifest")));
        assert!(names.iter().any(|n| n.contains(".s3.manifest")));
        assert!(names.iter().any(|n| n == "state.latest"));

        // restore from the pointer and verify it lands on step 3
        let stem3 = stem.clone();
        let steps = run_parallel(p, move |dns| {
            let step = load_latest(dns, &stem3).unwrap();
            assert_eq!(step, 3);
            dns.state().steps
        });
        assert!(steps.iter().all(|&s| s == 3));
    }

    #[test]
    fn load_latest_without_pointer_is_typed() {
        let dir = test_dir("dns_ckpt_test7");
        let stem = dir.join("state");
        crate::solver::run_serial(
            Params::channel(16, 25, 16, 80.0),
            move |dns| match load_latest(dns, &stem).unwrap_err() {
                CheckpointError::NoManifest { .. } => {}
                other => panic!("expected NoManifest, got {other}"),
            },
        );
    }
}
