//! Checkpoint/restart: binary snapshots of the spectral state, one file
//! per rank — the restart capability any 650,000-step production run
//! (section 6 of the paper) depends on.
//!
//! Format (little-endian): magic, grid signature, time, step count,
//! then the five coefficient fields as raw `f64` pairs.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::solver::ChannelDns;
use crate::C64;

const MAGIC: u64 = 0x434E_4453_4B50_5431; // "CNDSKPT1"

/// Per-rank checkpoint path: `<stem>.r<a>x<b>.ckpt`.
pub fn rank_path(stem: &Path, dns: &ChannelDns) -> PathBuf {
    let a = dns.pfft().comm_a().rank();
    let b = dns.pfft().comm_b().rank();
    stem.with_extension(format!("r{a}x{b}.ckpt"))
}

fn put_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_f64(w: &mut impl Write, v: f64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn get_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn get_f64(r: &mut impl Read) -> std::io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn put_field(w: &mut impl Write, f: &[C64]) -> std::io::Result<()> {
    put_u64(w, f.len() as u64)?;
    for c in f {
        put_f64(w, c.re)?;
        put_f64(w, c.im)?;
    }
    Ok(())
}

fn get_field(r: &mut impl Read, expect: usize) -> std::io::Result<Vec<C64>> {
    let n = get_u64(r)? as usize;
    if n != expect {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("field length {n}, expected {expect}"),
        ));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let re = get_f64(r)?;
        let im = get_f64(r)?;
        out.push(C64::new(re, im));
    }
    Ok(out)
}

/// Write this rank's state to `<stem>.r<a>x<b>.ckpt`.
pub fn save(dns: &ChannelDns, stem: &Path) -> std::io::Result<()> {
    let path = rank_path(stem, dns);
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    let p = dns.params();
    put_u64(&mut w, MAGIC)?;
    for v in [p.nx, p.ny, p.nz, p.pa, p.pb] {
        put_u64(&mut w, v as u64)?;
    }
    put_f64(&mut w, dns.state().time)?;
    put_u64(&mut w, dns.state().steps)?;
    for f in [
        dns.state().u(),
        dns.state().v(),
        dns.state().w(),
        dns.state().omega_y(),
        dns.state().phi(),
    ] {
        put_field(&mut w, f)?;
    }
    w.flush()
}

/// Load this rank's state from `<stem>.r<a>x<b>.ckpt`; the grid and
/// process layout must match the running configuration.
pub fn load(dns: &mut ChannelDns, stem: &Path) -> std::io::Result<()> {
    let path = rank_path(stem, dns);
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    if get_u64(&mut r)? != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a channel-dns checkpoint",
        ));
    }
    let p = dns.params().clone();
    for want in [p.nx, p.ny, p.nz, p.pa, p.pb] {
        let got = get_u64(&mut r)? as usize;
        if got != want {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("grid mismatch: {got} vs {want}"),
            ));
        }
    }
    let time = get_f64(&mut r)?;
    let steps = get_u64(&mut r)?;
    let len = dns.field_len();
    let u = get_field(&mut r, len)?;
    let v = get_field(&mut r, len)?;
    let w = get_field(&mut r, len)?;
    let o = get_field(&mut r, len)?;
    let phi = get_field(&mut r, len)?;
    dns.restore_state(u, v, w, o, phi, time, steps);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::solver::run_parallel;
    use crate::stats::profiles;

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        let dir = std::env::temp_dir().join("dns_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("state");
        let p = Params::channel(16, 25, 16, 80.0)
            .with_dt(1e-3)
            .with_grid(2, 2);

        // run 6 steps straight through
        let reference = run_parallel(p.clone(), |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.3, 21);
            for _ in 0..6 {
                dns.step();
            }
            profiles(dns).u_mean
        });

        // run 3 steps, checkpoint, reload into a fresh solver, run 3 more
        let stem2 = stem.clone();
        let p2 = p.clone();
        let resumed = run_parallel(p, move |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.3, 21);
            for _ in 0..3 {
                dns.step();
            }
            save(dns, &stem2).unwrap();
        });
        drop(resumed);
        let stem3 = stem.clone();
        let resumed = run_parallel(p2, move |dns| {
            load(dns, &stem3).unwrap();
            assert_eq!(dns.state().steps, 3);
            for _ in 0..3 {
                dns.step();
            }
            profiles(dns).u_mean
        });

        for (a, b) in reference[0].iter().zip(&resumed[0]) {
            assert!((a - b).abs() < 1e-14, "{a} vs {b}");
        }
    }

    #[test]
    fn grid_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join("dns_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("state");
        let stem2 = stem.clone();
        crate::solver::run_serial(Params::channel(16, 25, 16, 80.0), move |dns| {
            save(dns, &stem2).unwrap();
        });
        let stem3 = stem.clone();
        crate::solver::run_serial(Params::channel(32, 25, 16, 80.0), move |dns| {
            let err = load(dns, &stem3).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        });
    }
}
