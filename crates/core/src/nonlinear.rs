//! Dealiased pseudo-spectral evaluation of the nonlinear terms — the
//! paper's section 2.3 pipeline, steps (a) through (h).
//!
//! Starting from spectral velocity coefficients in the y-pencil layout,
//! the three velocity components are inverse-transformed to the
//! 3/2-padded physical grid (two global transposes each), the quadratic
//! products are formed pointwise, the products travel back (two more
//! transposes each), and the right-hand sides of the `omega_y`/`phi`
//! equations are assembled per wavenumber:
//!
//! ```text
//! H_i = -d/dx_j (u_i u_j)
//! h_g = dH_x/dz - dH_z/dx
//! h_v = -d/dy (dH_x/dx + dH_z/dz) + (dxx + dzz) H_y
//! ```
//!
//! The production path ([`compute`]/[`compute_into`]) runs the fused
//! five-product pipeline of section 4.1 (`pfft::nonlinear_products`):
//! `vv` only enters `h_g`/`h_v` through the differences `A = uu - vv`
//! and `B = ww - vv` (the `d/dy(vv)` contributions of `H_y` and of
//! `d/dy(ikx H_x + ikz H_z)` cancel exactly), so only five products make
//! the forward hop. [`compute_unfused`] keeps the textbook six-product
//! assembly as the correctness oracle; see DESIGN.md for the accounting.

use crate::solver::ChannelDns;
use crate::C64;

/// The spectral convective-flux divergences `H_i = -d/dx_j (u_i u_j)` as
/// values at the collocation points, for every locally-owned wavenumber
/// (y-pencil layout). Shared by the `omega_y`/`phi` right-hand sides and
/// the pressure Poisson solve.
pub struct HFields {
    /// Streamwise component `H_x`.
    pub hx: Vec<C64>,
    /// Wall-normal component `H_y`.
    pub hy: Vec<C64>,
    /// Spanwise component `H_z`.
    pub hz: Vec<C64>,
}

/// Nonlinear right-hand sides, as *values at the y collocation points*
/// for every locally-owned wavenumber (same y-pencil layout as the
/// state), plus the mean-flow terms on the rank owning mode (0,0).
#[derive(Default)]
pub struct NlTerms {
    /// RHS of the `omega_y` equation.
    pub h_g: Vec<C64>,
    /// RHS of the `phi` equation.
    pub h_v: Vec<C64>,
    /// `H_x(0,0)(y) = -d<uv>/dy` (streamwise mean forcing by the
    /// turbulence), on the owner of mode (0,0); empty elsewhere.
    pub mean_hx: Vec<f64>,
    /// `H_z(0,0)(y) = -d<vw>/dy`.
    pub mean_hz: Vec<f64>,
}

impl NlTerms {
    /// All-zero terms with the layout of `dns` (used for the linearised
    /// runs and as the `zeta_1 = 0` previous-substep placeholder).
    pub fn zeros(dns: &ChannelDns) -> NlTerms {
        let mut t = NlTerms::default();
        t.reset(dns);
        t
    }

    /// Size for the layout of `dns` and zero every entry (no allocation
    /// once the buffers have their steady-state sizes).
    pub fn reset(&mut self, dns: &ChannelDns) {
        let len = dns.field_len();
        let ny = dns.ops().n();
        let zero = C64::new(0.0, 0.0);
        self.h_g.clear();
        self.h_g.resize(len, zero);
        self.h_v.clear();
        self.h_v.resize(len, zero);
        self.mean_hx.clear();
        self.mean_hx.resize(ny, 0.0);
        self.mean_hz.clear();
        self.mean_hz.resize(ny, 0.0);
    }
}

/// Reusable buffers for [`compute_into`]: the pfft pipeline workspace
/// plus the stacked field staging and per-mode line scratch. Starts
/// empty; sized on first use, allocation-free afterwards.
#[derive(Default)]
pub struct NlWorkspace {
    /// Transform-pipeline buffers (transposes, line scratch).
    pub pfft: dns_pfft::Workspace,
    /// Stacked velocity values `[kz_loc][3][kx_loc][ny]`.
    uvw: Vec<C64>,
    /// Stacked spectral products `[kz_loc][5][kx_loc][ny]`.
    products: Vec<C64>,
    /// Per-mode line of `G = ikx H_x + ikz H_z + k^2 vv` values.
    gline: Vec<C64>,
    /// Two derivative-line buffers (`d/dy` of `uv` and `vw`).
    dy1: Vec<C64>,
    dy2: Vec<C64>,
    /// Interpolation scratch for the derivative solves.
    coef: Vec<C64>,
}

/// Evaluate the convective-flux divergences `H_i` for the current state
/// (the physical-space pipeline: steps (a)-(h) of section 2.3). This is
/// the unfused six-product path, kept as the correctness oracle and for
/// the pressure diagnostics, which need all three `H_i` fields.
pub fn quadratic_h(dns: &ChannelDns) -> HFields {
    let ops = dns.ops();
    let ny = ops.n();
    let pfft = dns.pfft();

    // (a)-(f): velocities to the physical grid; the three fields share
    // their transposes (one aggregated exchange per hop — larger, fewer
    // messages, the same economics the paper exploits in hybrid mode)
    let vals_u = dns.field_values(dns.state().u());
    let vals_v = dns.field_values(dns.state().v());
    let vals_w = dns.field_values(dns.state().w());
    let mut phys = pfft.inverse_batch(&[&vals_u, &vals_v, &vals_w]);
    let phys_w = phys.pop().expect("w");
    let phys_v = phys.pop().expect("v");
    let phys_u = phys.pop().expect("u");

    // (g): quadratic products on the dealiased grid
    let npts = phys_u.len();
    let mut uu = vec![0.0; npts];
    let mut uv = vec![0.0; npts];
    let mut uw = vec![0.0; npts];
    let mut vv = vec![0.0; npts];
    let mut vw = vec![0.0; npts];
    let mut ww = vec![0.0; npts];
    for i in 0..npts {
        let (u, v, w) = (phys_u[i], phys_v[i], phys_w[i]);
        uu[i] = u * u;
        uv[i] = u * v;
        uw[i] = u * w;
        vv[i] = v * v;
        vw[i] = v * w;
        ww[i] = w * w;
    }

    // (h): products back to spectral space (truncation dealiases); all
    // six products aggregated into one exchange per hop
    let mut spec = pfft.forward_batch(&[&uu, &uv, &uw, &vv, &vw, &ww]);
    let s_ww = spec.pop().expect("ww");
    let s_vw = spec.pop().expect("vw");
    let s_vv = spec.pop().expect("vv");
    let s_uw = spec.pop().expect("uw");
    let s_uv = spec.pop().expect("uv");
    let s_uu = spec.pop().expect("uu");

    let len = dns.field_len();
    let mut h = HFields {
        hx: vec![C64::new(0.0, 0.0); len],
        hy: vec![C64::new(0.0, 0.0); len],
        hz: vec![C64::new(0.0, 0.0); len],
    };
    let mut dy_vals = vec![C64::new(0.0, 0.0); ny];
    for mode in 0..dns.local_modes() {
        let line = dns.line_range(mode);
        let (ikx, ikz, _) = dns.mode_wavenumbers(mode);
        if dns.is_nyquist(mode) {
            continue;
        }
        // y-derivative of a product line: interpolate values to spline
        // coefficients, then apply B1
        let dy_of = |vals: &[C64], out: &mut [C64]| {
            let coef = ops.interpolate_complex(vals);
            ops.b1().matvec_complex(&coef, out);
        };
        // H_x = -(ikx uu + d/dy uv + ikz uw)
        dy_of(&s_uv[line.clone()], &mut dy_vals);
        for j in 0..ny {
            h.hx[line.start + j] =
                -(ikx * s_uu[line.start + j] + dy_vals[j] + ikz * s_uw[line.start + j]);
        }
        // H_y = -(ikx uv + d/dy vv + ikz vw)
        dy_of(&s_vv[line.clone()], &mut dy_vals);
        for j in 0..ny {
            h.hy[line.start + j] =
                -(ikx * s_uv[line.start + j] + dy_vals[j] + ikz * s_vw[line.start + j]);
        }
        // H_z = -(ikx uw + d/dy vw + ikz ww)
        dy_of(&s_vw[line.clone()], &mut dy_vals);
        for j in 0..ny {
            h.hz[line.start + j] =
                -(ikx * s_uw[line.start + j] + dy_vals[j] + ikz * s_ww[line.start + j]);
        }
    }
    h
}

/// Evaluate the nonlinear terms for the current state of `dns`
/// (convenience wrapper around [`compute_into`] that allocates fresh
/// buffers; the timestep loop reuses persistent ones).
pub fn compute(dns: &ChannelDns) -> NlTerms {
    let mut out = NlTerms::default();
    let mut ws = NlWorkspace::default();
    compute_into(dns, &mut out, &mut ws);
    out
}

/// Evaluate the nonlinear terms through the fused five-product pipeline,
/// writing into caller-owned output and workspace buffers. Steady-state
/// calls perform zero heap allocations on a single rank.
pub fn compute_into(dns: &ChannelDns, out: &mut NlTerms, ws: &mut NlWorkspace) {
    out.reset(dns);
    if !dns.params().nonlinear {
        return;
    }
    let _nl = dns_telemetry::span("nonlinear", dns_telemetry::Phase::Other);
    let ops = dns.ops();
    let ny = ops.n();
    let pfft = dns.pfft();
    let sxl = pfft.kx_block().len;
    let nzl = pfft.kz_block().len;
    let zero = C64::new(0.0, 0.0);
    const KF: usize = dns_pfft::NL_FIELDS;
    const KP: usize = dns_pfft::NL_PRODUCTS;

    // velocities to collocation values, stacked [kz_loc][3][kx_loc][ny]
    // directly (no separate full-field staging copy)
    ws.uvw.clear();
    ws.uvw.resize(KF * dns.field_len(), zero);
    let state = dns.state();
    for kzl in 0..nzl {
        for (fi, field) in [state.u(), state.v(), state.w()].into_iter().enumerate() {
            for kxl in 0..sxl {
                let src = (kzl * sxl + kxl) * ny;
                let dst = ((kzl * KF + fi) * sxl + kxl) * ny;
                ops.b0()
                    .matvec_complex(&field[src..src + ny], &mut ws.uvw[dst..dst + ny]);
            }
        }
    }

    // fused inverse-product-forward cycle: five spectral products out
    pfft.nonlinear_products(&ws.uvw, &mut ws.products, &mut ws.pfft);

    // per-mode assembly from the five products A = uu - vv, uv, uw, vw,
    // B = ww - vv (D = d/dy on a mode line):
    //   h_g = kx kz (A - B) + (kz^2 - kx^2) uw - ikz D(uv) + ikx D(vw)
    //   G   = kx^2 A + kz^2 B + 2 kx kz uw - ikx D(uv) - ikz D(vw)
    //   h_v = -D(G) + k^2 (ikx uv + ikz vw)
    // (the d/dy(vv) terms of H_y and of D(ikx H_x + ikz H_z) cancel)
    ws.gline.resize(ny, zero);
    ws.dy1.resize(ny, zero);
    ws.dy2.resize(ny, zero);
    ws.coef.resize(ny, zero);
    let products = &ws.products;
    for mode in 0..dns.local_modes() {
        if dns.is_nyquist(mode) {
            continue;
        }
        let kzl = mode / sxl;
        let kxl = mode % sxl;
        let pline = |f: usize| -> &[C64] {
            let s = ((kzl * KP + f) * sxl + kxl) * ny;
            &products[s..s + ny]
        };
        let (pa, puv, puw, pvw, pb) = (pline(0), pline(1), pline(2), pline(3), pline(4));
        // D(uv) and D(vw) feed both h_g and G (and the mean forcing)
        let dy_of = |vals: &[C64], coef: &mut [C64], out: &mut [C64]| {
            ops.interpolate_complex_into(vals, coef);
            ops.b1().matvec_complex(coef, out);
        };
        dy_of(puv, &mut ws.coef, &mut ws.dy1);
        dy_of(pvw, &mut ws.coef, &mut ws.dy2);
        if dns.is_mean(mode) {
            for j in 0..ny {
                out.mean_hx[j] = -ws.dy1[j].re;
                out.mean_hz[j] = -ws.dy2[j].re;
            }
            continue;
        }
        let (ikx, ikz, k2) = dns.mode_wavenumbers(mode);
        let (kx, kz) = (ikx.im, ikz.im);
        let line = dns.line_range(mode);
        for j in 0..ny {
            out.h_g[line.start + j] = kx * kz * (pa[j] - pb[j]) + (kz * kz - kx * kx) * puw[j]
                - ikz * ws.dy1[j]
                + ikx * ws.dy2[j];
            ws.gline[j] = kx * kx * pa[j] + kz * kz * pb[j] + 2.0 * kx * kz * puw[j]
                - ikx * ws.dy1[j]
                - ikz * ws.dy2[j];
        }
        // D(G) can overwrite dy1 — h_g and G are already assembled
        dy_of(&ws.gline, &mut ws.coef, &mut ws.dy1);
        for j in 0..ny {
            out.h_v[line.start + j] = -ws.dy1[j] + k2 * (ikx * puv[j] + ikz * pvw[j]);
        }
    }
}

/// The pre-fusion reference evaluation: six products through the
/// unfused batched transforms, then the textbook `H_i` assembly. Kept
/// as the correctness oracle for [`compute_into`].
pub fn compute_unfused(dns: &ChannelDns) -> NlTerms {
    if !dns.params().nonlinear {
        return NlTerms::zeros(dns);
    }
    let ops = dns.ops();
    let ny = ops.n();
    let h = quadratic_h(dns);

    let mut out = NlTerms::zeros(dns);
    let mut dy_vals = vec![C64::new(0.0, 0.0); ny];
    for mode in 0..dns.local_modes() {
        let line = dns.line_range(mode);
        let (ikx, ikz, k2) = dns.mode_wavenumbers(mode);
        if dns.is_nyquist(mode) {
            continue;
        }
        if dns.is_mean(mode) {
            for j in 0..ny {
                out.mean_hx[j] = h.hx[line.start + j].re;
                out.mean_hz[j] = h.hz[line.start + j].re;
            }
            continue;
        }
        // h_g = ikz H_x - ikx H_z
        for j in 0..ny {
            out.h_g[line.start + j] = ikz * h.hx[line.start + j] - ikx * h.hz[line.start + j];
        }
        // h_v = -d/dy (ikx H_x + ikz H_z) - k^2 H_y
        let g_vals: Vec<C64> = (0..ny)
            .map(|j| ikx * h.hx[line.start + j] + ikz * h.hz[line.start + j])
            .collect();
        let coef = ops.interpolate_complex(&g_vals);
        ops.b1().matvec_complex(&coef, &mut dy_vals);
        for j in 0..ny {
            out.h_v[line.start + j] = -dy_vals[j] - k2 * h.hy[line.start + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::solver::{run_parallel, run_serial};

    fn worst_mismatch(dns: &ChannelDns) -> f64 {
        let fused = compute(dns);
        let oracle = compute_unfused(dns);
        let scale = oracle
            .h_g
            .iter()
            .chain(&oracle.h_v)
            .map(|c| c.norm())
            .fold(1.0, f64::max);
        let mut worst = 0.0f64;
        for (a, b) in fused.h_g.iter().zip(&oracle.h_g) {
            worst = worst.max((a - b).norm());
        }
        for (a, b) in fused.h_v.iter().zip(&oracle.h_v) {
            worst = worst.max((a - b).norm());
        }
        for (a, b) in fused.mean_hx.iter().zip(&oracle.mean_hx) {
            worst = worst.max((a - b).abs());
        }
        for (a, b) in fused.mean_hz.iter().zip(&oracle.mean_hz) {
            worst = worst.max((a - b).abs());
        }
        worst / scale
    }

    fn perturbed(dns: &mut ChannelDns) {
        dns.set_laminar(1.0);
        dns.add_perturbation(0.3, 9);
    }

    #[test]
    fn fused_terms_match_the_unfused_oracle() {
        let worst = run_serial(Params::channel(16, 25, 16, 100.0), |dns| {
            perturbed(dns);
            worst_mismatch(dns)
        });
        assert!(worst < 1e-12, "fused/oracle mismatch {worst}");
    }

    #[test]
    fn fused_terms_match_the_oracle_with_threads() {
        let worst = run_serial(
            Params::channel(16, 25, 16, 100.0).with_fft_threads(2),
            |dns| {
                perturbed(dns);
                worst_mismatch(dns)
            },
        );
        assert!(worst < 1e-12, "threaded fused/oracle mismatch {worst}");
    }

    #[test]
    fn fused_terms_match_the_oracle_on_a_process_grid() {
        let outs = run_parallel(Params::channel(16, 25, 16, 100.0).with_grid(2, 2), |dns| {
            perturbed(dns);
            worst_mismatch(dns)
        });
        // slightly looser than the serial bound: the 2x2 transpose
        // pack order changes the round-off pattern of both paths
        for worst in outs {
            assert!(worst < 1e-11, "multirank fused/oracle mismatch {worst}");
        }
    }
}
