//! Dealiased pseudo-spectral evaluation of the nonlinear terms — the
//! paper's section 2.3 pipeline, steps (a) through (h).
//!
//! Starting from spectral velocity coefficients in the y-pencil layout,
//! the three velocity components are inverse-transformed to the
//! 3/2-padded physical grid (two global transposes each), the quadratic
//! products are formed pointwise, the products travel back (two more
//! transposes each), and the right-hand sides of the `omega_y`/`phi`
//! equations are assembled per wavenumber:
//!
//! ```text
//! H_i = -d/dx_j (u_i u_j)
//! h_g = dH_x/dz - dH_z/dx
//! h_v = -d/dy (dH_x/dx + dH_z/dz) + (dxx + dzz) H_y
//! ```
//!
//! The paper transposes five product fields; this implementation carries
//! all six quadratic products (`vv` included) for clarity — see
//! DESIGN.md for the accounting note.

use crate::solver::ChannelDns;
use crate::C64;

/// The spectral convective-flux divergences `H_i = -d/dx_j (u_i u_j)` as
/// values at the collocation points, for every locally-owned wavenumber
/// (y-pencil layout). Shared by the `omega_y`/`phi` right-hand sides and
/// the pressure Poisson solve.
pub struct HFields {
    /// Streamwise component `H_x`.
    pub hx: Vec<C64>,
    /// Wall-normal component `H_y`.
    pub hy: Vec<C64>,
    /// Spanwise component `H_z`.
    pub hz: Vec<C64>,
}

/// Nonlinear right-hand sides, as *values at the y collocation points*
/// for every locally-owned wavenumber (same y-pencil layout as the
/// state), plus the mean-flow terms on the rank owning mode (0,0).
pub struct NlTerms {
    /// RHS of the `omega_y` equation.
    pub h_g: Vec<C64>,
    /// RHS of the `phi` equation.
    pub h_v: Vec<C64>,
    /// `H_x(0,0)(y) = -d<uv>/dy` (streamwise mean forcing by the
    /// turbulence), on the owner of mode (0,0); empty elsewhere.
    pub mean_hx: Vec<f64>,
    /// `H_z(0,0)(y) = -d<vw>/dy`.
    pub mean_hz: Vec<f64>,
}

impl NlTerms {
    /// All-zero terms with the layout of `dns` (used for the linearised
    /// runs and as the `zeta_1 = 0` previous-substep placeholder).
    pub fn zeros(dns: &ChannelDns) -> NlTerms {
        let len = dns.field_len();
        NlTerms {
            h_g: vec![C64::new(0.0, 0.0); len],
            h_v: vec![C64::new(0.0, 0.0); len],
            mean_hx: vec![0.0; dns.ops().n()],
            mean_hz: vec![0.0; dns.ops().n()],
        }
    }
}

/// Evaluate the convective-flux divergences `H_i` for the current state
/// (the physical-space pipeline: steps (a)-(h) of section 2.3).
pub fn quadratic_h(dns: &ChannelDns) -> HFields {
    let ops = dns.ops();
    let ny = ops.n();
    let pfft = dns.pfft();

    // (a)-(f): velocities to the physical grid; the three fields share
    // their transposes (one aggregated exchange per hop — larger, fewer
    // messages, the same economics the paper exploits in hybrid mode)
    let vals_u = dns.field_values(dns.state().u());
    let vals_v = dns.field_values(dns.state().v());
    let vals_w = dns.field_values(dns.state().w());
    let mut phys = pfft.inverse_batch(&[&vals_u, &vals_v, &vals_w]);
    let phys_w = phys.pop().expect("w");
    let phys_v = phys.pop().expect("v");
    let phys_u = phys.pop().expect("u");

    // (g): quadratic products on the dealiased grid
    let npts = phys_u.len();
    let mut uu = vec![0.0; npts];
    let mut uv = vec![0.0; npts];
    let mut uw = vec![0.0; npts];
    let mut vv = vec![0.0; npts];
    let mut vw = vec![0.0; npts];
    let mut ww = vec![0.0; npts];
    for i in 0..npts {
        let (u, v, w) = (phys_u[i], phys_v[i], phys_w[i]);
        uu[i] = u * u;
        uv[i] = u * v;
        uw[i] = u * w;
        vv[i] = v * v;
        vw[i] = v * w;
        ww[i] = w * w;
    }

    // (h): products back to spectral space (truncation dealiases); all
    // six products aggregated into one exchange per hop
    let mut spec = pfft.forward_batch(&[&uu, &uv, &uw, &vv, &vw, &ww]);
    let s_ww = spec.pop().expect("ww");
    let s_vw = spec.pop().expect("vw");
    let s_vv = spec.pop().expect("vv");
    let s_uw = spec.pop().expect("uw");
    let s_uv = spec.pop().expect("uv");
    let s_uu = spec.pop().expect("uu");

    let len = dns.field_len();
    let mut h = HFields {
        hx: vec![C64::new(0.0, 0.0); len],
        hy: vec![C64::new(0.0, 0.0); len],
        hz: vec![C64::new(0.0, 0.0); len],
    };
    let mut dy_vals = vec![C64::new(0.0, 0.0); ny];
    for mode in 0..dns.local_modes() {
        let line = dns.line_range(mode);
        let (ikx, ikz, _) = dns.mode_wavenumbers(mode);
        if dns.is_nyquist(mode) {
            continue;
        }
        // y-derivative of a product line: interpolate values to spline
        // coefficients, then apply B1
        let dy_of = |vals: &[C64], out: &mut [C64]| {
            let coef = ops.interpolate_complex(vals);
            ops.b1().matvec_complex(&coef, out);
        };
        // H_x = -(ikx uu + d/dy uv + ikz uw)
        dy_of(&s_uv[line.clone()], &mut dy_vals);
        for j in 0..ny {
            h.hx[line.start + j] =
                -(ikx * s_uu[line.start + j] + dy_vals[j] + ikz * s_uw[line.start + j]);
        }
        // H_y = -(ikx uv + d/dy vv + ikz vw)
        dy_of(&s_vv[line.clone()], &mut dy_vals);
        for j in 0..ny {
            h.hy[line.start + j] =
                -(ikx * s_uv[line.start + j] + dy_vals[j] + ikz * s_vw[line.start + j]);
        }
        // H_z = -(ikx uw + d/dy vw + ikz ww)
        dy_of(&s_vw[line.clone()], &mut dy_vals);
        for j in 0..ny {
            h.hz[line.start + j] =
                -(ikx * s_uw[line.start + j] + dy_vals[j] + ikz * s_ww[line.start + j]);
        }
    }
    h
}

/// Evaluate the nonlinear terms for the current state of `dns`.
pub fn compute(dns: &ChannelDns) -> NlTerms {
    if !dns.params().nonlinear {
        return NlTerms::zeros(dns);
    }
    let _nl = dns_telemetry::span("nonlinear", dns_telemetry::Phase::Other);
    let ops = dns.ops();
    let ny = ops.n();
    let h = quadratic_h(dns);

    let len = dns.field_len();
    let mut out = NlTerms {
        h_g: vec![C64::new(0.0, 0.0); len],
        h_v: vec![C64::new(0.0, 0.0); len],
        mean_hx: vec![0.0; ny],
        mean_hz: vec![0.0; ny],
    };
    let mut dy_vals = vec![C64::new(0.0, 0.0); ny];
    for mode in 0..dns.local_modes() {
        let line = dns.line_range(mode);
        let (ikx, ikz, k2) = dns.mode_wavenumbers(mode);
        if dns.is_nyquist(mode) {
            continue;
        }
        if dns.is_mean(mode) {
            for j in 0..ny {
                out.mean_hx[j] = h.hx[line.start + j].re;
                out.mean_hz[j] = h.hz[line.start + j].re;
            }
            continue;
        }
        // h_g = ikz H_x - ikx H_z
        for j in 0..ny {
            out.h_g[line.start + j] = ikz * h.hx[line.start + j] - ikx * h.hz[line.start + j];
        }
        // h_v = -d/dy (ikx H_x + ikz H_z) - k^2 H_y
        let g_vals: Vec<C64> = (0..ny)
            .map(|j| ikx * h.hx[line.start + j] + ikz * h.hz[line.start + j])
            .collect();
        let coef = ops.interpolate_complex(&g_vals);
        ops.b1().matvec_complex(&coef, &mut dy_vals);
        for j in 0..ny {
            out.h_v[line.start + j] = -dy_vals[j] - k2 * h.hy[line.start + j];
        }
    }
    out
}
