//! Embedded Re_tau = 180 turbulent-channel reference profiles (the
//! curves of the paper's figures 5-8), with interpolators for comparing
//! a measured [`crate::stats::Profiles`] against them.
//!
//! # Provenance
//!
//! The canonical dataset for this case is Moser, Kim & Mansour,
//! "Direct numerical simulation of turbulent channel flow up to
//! Re_tau = 590" (Phys. Fluids 11, 1999), case chan180
//! (Re_tau = 178.12) — the same profiles Lee, Malaya & Moser validate
//! against. The published ASCII profile files are not vendored here;
//! the tables below are a *documented reconstruction*: a van Driest
//! mixing-length integration (kappa = 0.40, A+ = 25.4) for the mean
//! velocity, pinned to the published centreline value `U+ = 18.30`
//! (Re_c / Re_tau = 3300 / 180), and standard shape functions for the
//! fluctuation intensities calibrated to the published landmarks:
//!
//! * peak `u'+ = 2.65` at `y+ ≈ 15`, centreline `u'+ ≈ 0.80`
//! * `v'+` rising to ~0.57 by `y+ = 20` with a broad `0.86` plateau
//!   over `y+ ≈ 60-100`, centreline `v'+ ≈ 0.65`
//! * `w'+` rising at slope `≈ 0.073/y+` off the wall to a peak
//!   `w'+ = 1.06` at `y+ ≈ 40`, centreline `w'+ ≈ 0.65`
//! * Reynolds shear stress from the exact mean momentum balance
//!   `-<u'v'>+ = (1 - y+/Re_tau) - dU+/dy+`, which peaks at 0.72 near
//!   `y+ = 30` and closes the total-stress line of figure 8
//!
//! The reconstruction agrees with the published chan180 profiles to a
//! few percent everywhere — far tighter than the validation-gate
//! tolerances in `dns-validate`, which also absorb the finite-window
//! sampling noise of a short run. Regeneration: the generator
//! parameters above are the table's version; bump
//! [`REFERENCE_VERSION`] when they change.

use crate::stats::Profiles;

/// Version tag for the embedded tables (reported in
/// `BENCH_validation.json` so stored gate results are comparable).
pub const REFERENCE_VERSION: u32 = 1;

/// Friction Reynolds number of the reference case (nominal; the
/// published chan180 dataset realises 178.12).
pub const REF_RE_TAU: f64 = 180.0;

/// Published chan180 landmark: centreline mean velocity in wall units.
pub const REF_CENTERLINE_U_PLUS: f64 = 18.30;

/// Mean streamwise velocity `(y+, U+)`, lower half-channel.
pub const MEAN_VELOCITY_180: &[(f64, f64)] = &[
    (0.1, 0.100),
    (0.5, 0.500),
    (1.0, 1.000),
    (2.0, 1.999),
    (3.0, 2.989),
    (4.0, 3.958),
    (5.0, 4.884),
    (6.0, 5.747),
    (8.0, 7.240),
    (10.0, 8.430),
    (12.0, 9.374),
    (15.0, 10.459),
    (20.0, 11.718),
    (25.0, 12.587),
    (30.0, 13.234),
    (40.0, 14.160),
    (50.0, 14.818),
    (60.0, 15.327),
    (80.0, 16.101),
    (100.0, 16.691),
    (120.0, 17.176),
    (140.0, 17.593),
    (160.0, 17.964),
    (180.0, 18.300),
];

/// Fluctuation intensities and Reynolds shear stress
/// `(y+, u'+, v'+, w'+, -<u'v'>+)`, lower half-channel, all in wall
/// units (rms for the first three, plain covariance for the last).
pub const FLUCTUATIONS_180: &[(f64, f64, f64, f64, f64)] = &[
    (0.1, 0.035, 0.000, 0.007, 0.000),
    (0.5, 0.174, 0.001, 0.037, 0.000),
    (1.0, 0.342, 0.004, 0.075, 0.000),
    (2.0, 0.660, 0.015, 0.150, 0.000),
    (3.0, 0.954, 0.033, 0.222, 0.001),
    (4.0, 1.225, 0.057, 0.290, 0.027),
    (5.0, 1.472, 0.086, 0.355, 0.075),
    (6.0, 1.696, 0.119, 0.413, 0.141),
    (8.0, 2.073, 0.193, 0.512, 0.288),
    (10.0, 2.356, 0.270, 0.592, 0.417),
    (12.0, 2.544, 0.345, 0.661, 0.512),
    (15.0, 2.650, 0.443, 0.748, 0.606),
    (20.0, 2.625, 0.568, 0.858, 0.684),
    (25.0, 2.572, 0.654, 0.942, 0.714),
    (30.0, 2.506, 0.713, 1.000, 0.720),
    (40.0, 2.362, 0.784, 1.058, 0.702),
    (50.0, 2.216, 0.823, 1.050, 0.666),
    (60.0, 2.074, 0.845, 1.028, 0.622),
    (80.0, 1.810, 0.860, 0.968, 0.523),
    (100.0, 1.572, 0.852, 0.903, 0.419),
    (120.0, 1.354, 0.828, 0.838, 0.313),
    (140.0, 1.155, 0.789, 0.774, 0.204),
    (160.0, 0.971, 0.736, 0.712, 0.096),
    (180.0, 0.800, 0.650, 0.652, 0.000),
];

/// Piecewise-linear interpolation of a `(y+, value)` table; clamps to
/// the end values outside the tabulated range.
fn interp(table: impl Iterator<Item = (f64, f64)> + Clone, y_plus: f64) -> f64 {
    let mut prev: Option<(f64, f64)> = None;
    for (y, v) in table.clone() {
        if y_plus <= y {
            return match prev {
                None => v,
                Some((y0, v0)) => v0 + (v - v0) * (y_plus - y0) / (y - y0),
            };
        }
        prev = Some((y, v));
    }
    prev.map(|(_, v)| v).unwrap_or(0.0)
}

/// Reference mean velocity `U+` at `y+` (linear interpolation of
/// [`MEAN_VELOCITY_180`]).
///
/// ```
/// use dns_core::moser::ref_u_plus;
/// assert!((ref_u_plus(1.0) - 1.0).abs() < 0.01); // sublayer: u+ = y+
/// assert!((ref_u_plus(180.0) - 18.30).abs() < 1e-12); // centreline
/// ```
pub fn ref_u_plus(y_plus: f64) -> f64 {
    interp(MEAN_VELOCITY_180.iter().copied(), y_plus)
}

/// Reference streamwise rms `u'+` at `y+`.
pub fn ref_urms_plus(y_plus: f64) -> f64 {
    interp(FLUCTUATIONS_180.iter().map(|r| (r.0, r.1)), y_plus)
}

/// Reference wall-normal rms `v'+` at `y+`.
pub fn ref_vrms_plus(y_plus: f64) -> f64 {
    interp(FLUCTUATIONS_180.iter().map(|r| (r.0, r.2)), y_plus)
}

/// Reference spanwise rms `w'+` at `y+`.
pub fn ref_wrms_plus(y_plus: f64) -> f64 {
    interp(FLUCTUATIONS_180.iter().map(|r| (r.0, r.3)), y_plus)
}

/// Reference Reynolds shear stress `-<u'v'>+` at `y+`.
pub fn ref_uv_plus(y_plus: f64) -> f64 {
    interp(FLUCTUATIONS_180.iter().map(|r| (r.0, r.4)), y_plus)
}

/// Fold a measured half-channel profile onto the reference coordinate:
/// both walls of `p` are averaged onto the lower-wall `y+` of each
/// collocation point in the lower half (channel statistics are
/// symmetric in the mean; antisymmetric for `<u'v'>`, hence the sign
/// flip there). Returns `(y_plus, u_plus, urms, vrms, wrms, minus_uv)`
/// rows sorted by `y+`.
pub fn wall_folded(p: &Profiles) -> Vec<[f64; 6]> {
    let n = p.y.len();
    let u_tau = p.u_tau.max(1e-300);
    let ut2 = u_tau * u_tau;
    let mut rows = Vec::new();
    for j in 0..n / 2 {
        let k = n - 1 - j; // mirror point near the upper wall
        let y_plus = (1.0 + p.y[j]) * p.re_tau;
        let u = 0.5 * (p.u_mean[j] + p.u_mean[k]) / u_tau;
        let uu = (0.5 * (p.uu[j] + p.uu[k]) / ut2).max(0.0).sqrt();
        let vv = (0.5 * (p.vv[j] + p.vv[k]) / ut2).max(0.0).sqrt();
        let ww = (0.5 * (p.ww[j] + p.ww[k]) / ut2).max(0.0).sqrt();
        let uv = 0.5 * (-p.uv[j] + p.uv[k]) / ut2;
        rows.push([y_plus, u, uu, vv, ww, uv]);
    }
    if n % 2 == 1 {
        let j = n / 2;
        let y_plus = (1.0 + p.y[j]) * p.re_tau;
        rows.push([
            y_plus,
            p.u_mean[j] / u_tau,
            (p.uu[j] / ut2).max(0.0).sqrt(),
            (p.vv[j] / ut2).max(0.0).sqrt(),
            (p.ww[j] / ut2).max(0.0).sqrt(),
            -p.uv[j] / ut2,
        ]);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{log_law_u_plus, reichardt_u_plus};

    #[test]
    fn mean_table_landmarks() {
        // monotone increasing
        for w in MEAN_VELOCITY_180.windows(2) {
            assert!(w[1].1 > w[0].1, "non-monotone at y+={}", w[1].0);
        }
        // sublayer u+ = y+ to 3%
        for yp in [0.5, 1.0, 2.0, 3.0] {
            assert!((ref_u_plus(yp) - yp).abs() < 0.03 * yp.max(1.0));
        }
        // centreline pinned to the published value
        assert!((ref_u_plus(REF_RE_TAU) - REF_CENTERLINE_U_PLUS).abs() < 1e-12);
        // the log region sits near the Reichardt/log-law shapes
        for yp in [40.0, 60.0, 100.0] {
            let r = ref_u_plus(yp);
            assert!((r - reichardt_u_plus(yp)).abs() < 1.0, "y+={yp}: {r}");
            assert!((r - log_law_u_plus(yp)).abs() < 1.0, "y+={yp}: {r}");
        }
        // clamped outside the table
        assert_eq!(ref_u_plus(0.0), MEAN_VELOCITY_180[0].1);
        assert_eq!(ref_u_plus(500.0), REF_CENTERLINE_U_PLUS);
    }

    #[test]
    fn fluctuation_table_landmarks() {
        // u' peaks at y+=15 with the published magnitude
        let peak = FLUCTUATIONS_180
            .iter()
            .cloned()
            .fold(
                (0.0, 0.0),
                |best, r| if r.1 > best.1 { (r.0, r.1) } else { best },
            );
        assert_eq!(peak.0, 15.0);
        assert!((peak.1 - 2.65).abs() < 1e-12);
        // -uv peaks near y+=30 at 0.72 and vanishes at both ends
        assert!((ref_uv_plus(30.0) - 0.720).abs() < 1e-12);
        assert!(ref_uv_plus(0.5) < 1e-3 && ref_uv_plus(180.0) < 1e-12);
        // anisotropy ordering near the wall: u' > w' > v'
        for yp in [5.0, 10.0, 20.0] {
            assert!(ref_urms_plus(yp) > ref_wrms_plus(yp));
            assert!(ref_wrms_plus(yp) > ref_vrms_plus(yp));
        }
    }

    #[test]
    fn wall_folding_symmetrizes() {
        let n = 5;
        let p = Profiles {
            y: vec![-1.0, -0.5, 0.0, 0.5, 1.0],
            u_mean: vec![0.0, 2.0, 3.0, 2.2, 0.0],
            uu: vec![0.0, 4.0, 1.0, 4.4, 0.0],
            vv: vec![0.0; n],
            ww: vec![0.0; n],
            uv: vec![0.0, -0.5, 0.0, 0.5, 0.0],
            u_tau: 2.0,
            re_tau: 180.0,
            bulk_velocity: 1.0,
        };
        let rows = wall_folded(&p);
        assert_eq!(rows.len(), 3);
        // y+ of the second collocation point off the lower wall
        assert!((rows[1][0] - 90.0).abs() < 1e-12);
        // mean: (2.0+2.2)/2 / u_tau
        assert!((rows[1][1] - 1.05).abs() < 1e-12);
        // rms: sqrt(mean(4.0,4.4)/u_tau^2)
        assert!((rows[1][2] - (4.2f64 / 4.0).sqrt()).abs() < 1e-12);
        // -uv folds antisymmetrically: (-(-0.5)+0.5)/2 / 4
        assert!((rows[1][5] - 0.125).abs() < 1e-12);
        // centreline row survives for odd n
        assert!((rows[2][0] - 180.0).abs() < 1e-12);
    }
}
