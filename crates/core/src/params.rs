//! Simulation parameters.

/// How the mean flow is driven.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Forcing {
    /// Constant streamwise pressure gradient `-dP/dx` (in friction units
    /// `-dP/dx = 1` gives `u_tau = 1`).
    PressureGradient(f64),
    /// Constant mass flux: a feedback-controlled body force keeps the
    /// bulk velocity at the target (the other standard way to drive
    /// channel DNS; the friction velocity becomes an output).
    ConstantMassFlux {
        /// Target bulk (volume-averaged) streamwise velocity.
        bulk: f64,
    },
    /// No forcing (decaying flow; used by validation tests).
    None,
}

/// Physical and numerical configuration of a channel DNS.
#[derive(Clone, Debug, PartialEq)]
pub struct Params {
    /// Streamwise Fourier modes (multiple of 4: the 3/2-rule grid must
    /// stay even).
    pub nx: usize,
    /// Wall-normal B-spline collocation points.
    pub ny: usize,
    /// Spanwise Fourier modes (multiple of 4).
    pub nz: usize,
    /// Streamwise domain length (the paper's boxes are `O(10 pi)` long).
    pub lx: f64,
    /// Spanwise domain length.
    pub lz: f64,
    /// Kinematic viscosity. With `Forcing::PressureGradient(1.0)` and
    /// half-height 1 the friction Reynolds number is `1 / nu`.
    pub nu: f64,
    /// Time step.
    pub dt: f64,
    /// Mean-flow driving.
    pub forcing: Forcing,
    /// Spline order (8 in the paper: 7th-degree B-splines).
    pub spline_order: usize,
    /// Wall-clustering strength of the tanh breakpoint grid.
    pub grid_stretch: f64,
    /// Evaluate the nonlinear terms (false linearises about rest, used by
    /// the Stokes validation tests).
    pub nonlinear: bool,
    /// Process grid (CommA x CommB); `pa * pb` ranks are required.
    pub pa: usize,
    /// Second process-grid extent.
    pub pb: usize,
    /// On-node worker threads for the transform line loops (the paper's
    /// OpenMP threading, section 4.2). 1 = serial.
    pub fft_threads: usize,
    /// Route the implicit wall-normal solves through the batched
    /// multi-RHS panel path (section 4.1.1's "many right-hand sides at
    /// once"); false falls back to per-mode scalar sweeps, kept as the
    /// agreement oracle. An execution knob: results agree to round-off
    /// and the choice is excluded from [`Params::state_hash`].
    pub batched: bool,
    /// Overlap depth of the fused nonlinear x-stage: split the local y
    /// rows into up to this many batches and keep the CommA transpose
    /// for the next batch in flight behind the current batch's FFT
    /// kernel. `0`/`1` = blocking transposes. An execution knob —
    /// pipelined and blocking schedules are bitwise identical, so it is
    /// excluded from [`Params::state_hash`].
    pub pipeline: usize,
}

impl Params {
    /// A small, fully-resolved laptop-scale configuration at friction
    /// Reynolds number `re_tau` (the paper's production run is the same
    /// code at `Re_tau = 5200` on 10240 x 1536 x 7680 modes).
    pub fn channel(nx: usize, ny: usize, nz: usize, re_tau: f64) -> Params {
        Params {
            nx,
            ny,
            nz,
            lx: 2.0 * std::f64::consts::PI,
            lz: std::f64::consts::PI,
            nu: 1.0 / re_tau,
            dt: 1e-3,
            forcing: Forcing::PressureGradient(1.0),
            spline_order: 8,
            grid_stretch: 2.0,
            nonlinear: true,
            pa: 1,
            pb: 1,
            fft_threads: 1,
            batched: true,
            pipeline: 4,
        }
    }

    /// Enable/disable the batched multi-RHS implicit path (on by
    /// default; the scalar path is the agreement oracle).
    pub fn with_batched(mut self, batched: bool) -> Params {
        self.batched = batched;
        self
    }

    /// Set the overlap depth of the fused x-stage transposes (default 4;
    /// `0` restores blocking exchanges).
    pub fn with_pipeline(mut self, k: usize) -> Params {
        self.pipeline = k;
        self
    }

    /// Use `n` on-node threads for the transform line loops.
    pub fn with_fft_threads(mut self, n: usize) -> Params {
        self.fft_threads = n.max(1);
        self
    }

    /// Set the time step.
    pub fn with_dt(mut self, dt: f64) -> Params {
        self.dt = dt;
        self
    }

    /// Set the process grid.
    pub fn with_grid(mut self, pa: usize, pb: usize) -> Params {
        self.pa = pa;
        self.pb = pb;
        self
    }

    /// Validate the configuration.
    ///
    /// # Panics
    /// On inconsistent sizes.
    pub fn validate(&self) {
        assert!(
            self.nx.is_multiple_of(4) && self.nz.is_multiple_of(4),
            "nx, nz must be multiples of 4"
        );
        assert!(
            self.ny >= self.spline_order + 2,
            "ny too small for the spline order"
        );
        assert!(self.spline_order >= 4, "spline order must be at least 4");
        assert!(self.nu > 0.0 && self.dt > 0.0);
        assert!(self.lx > 0.0 && self.lz > 0.0);
    }

    /// Pressure-gradient magnitude (0 when unforced or flux-driven —
    /// the flux controller supplies its own force).
    pub fn pressure_gradient(&self) -> f64 {
        match self.forcing {
            Forcing::PressureGradient(g) => g,
            Forcing::ConstantMassFlux { .. } | Forcing::None => 0.0,
        }
    }

    /// Fundamental streamwise wavenumber `2 pi / Lx`.
    pub fn alpha(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.lx
    }

    /// Fundamental spanwise wavenumber `2 pi / Lz`.
    pub fn beta(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.lz
    }

    /// Degrees of freedom as counted by the paper.
    pub fn dof(&self) -> f64 {
        2.0 * self.nx as f64 * self.ny as f64 * self.nz as f64
    }

    /// A 64-bit digest of every parameter that affects the *numerical
    /// trajectory* — grid, domain, viscosity, time step, forcing, spline
    /// basis, nonlinearity. Checkpoints store it so a restart under
    /// different physics is rejected instead of silently continuing a
    /// different simulation. Pure execution knobs (`pa`, `pb`,
    /// `fft_threads`, `batched`, `pipeline`) are excluded: the decomposition is
    /// validated separately, and results are layout-independent.
    pub fn state_hash(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            let mut z = h.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut h = 0x434E_4453_0000_0000u64; // "CNDS" salt
        for v in [self.nx, self.ny, self.nz, self.spline_order] {
            h = mix(h, v as u64);
        }
        for v in [self.lx, self.lz, self.nu, self.dt, self.grid_stretch] {
            h = mix(h, v.to_bits());
        }
        let (tag, value) = match self.forcing {
            Forcing::PressureGradient(g) => (1u64, g.to_bits()),
            Forcing::ConstantMassFlux { bulk } => (2, bulk.to_bits()),
            Forcing::None => (3, 0),
        };
        h = mix(h, tag);
        h = mix(h, value);
        mix(h, self.nonlinear as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_preset_is_valid() {
        let p = Params::channel(32, 33, 32, 180.0);
        p.validate();
        assert!((p.nu - 1.0 / 180.0).abs() < 1e-15);
        assert_eq!(p.pressure_gradient(), 1.0);
    }

    #[test]
    #[should_panic(expected = "multiples of 4")]
    fn odd_grids_rejected() {
        Params::channel(30, 33, 32, 180.0).validate();
    }

    #[test]
    fn state_hash_tracks_physics_not_layout() {
        let p = Params::channel(32, 33, 32, 180.0);
        assert_eq!(p.state_hash(), p.clone().state_hash());
        // execution knobs don't change the hash
        assert_eq!(
            p.state_hash(),
            p.clone().with_grid(2, 2).with_fft_threads(4).state_hash()
        );
        assert_eq!(p.state_hash(), p.clone().with_batched(false).state_hash());
        assert_eq!(p.state_hash(), p.clone().with_pipeline(0).state_hash());
        // physics does
        assert_ne!(p.state_hash(), p.clone().with_dt(2e-3).state_hash());
        assert_ne!(
            p.state_hash(),
            Params::channel(32, 33, 32, 181.0).state_hash()
        );
        let mut flux = p.clone();
        flux.forcing = Forcing::ConstantMassFlux { bulk: 1.0 };
        assert_ne!(p.state_hash(), flux.state_hash());
    }

    #[test]
    fn wavenumber_fundamentals() {
        let p = Params::channel(32, 33, 32, 180.0);
        assert!((p.alpha() - 1.0).abs() < 1e-15);
        assert!((p.beta() - 2.0).abs() < 1e-15);
    }
}
