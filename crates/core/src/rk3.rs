//! The low-storage third-order IMEX Runge-Kutta scheme of Spalart, Moser
//! & Rogers (JCP 1991), the time discretisation named in section 2.1.
//!
//! For `du/dt = L u + N(u)` each substep `i` solves
//!
//! ```text
//! (I - beta_i dt L) u_{i+1} =
//!     u_i + dt (alpha_i L u_i + gamma_i N(u_i) + zeta_i N(u_{i-1}))
//! ```
//!
//! with the viscous operator `L` implicit and the convective terms
//! explicit. `zeta_1 = 0`, so each timestep is self-starting and only one
//! previous nonlinear term is ever stored — the "low storage" property.

/// Implicit weights on the new-time viscous term.
pub const BETA: [f64; 3] = [37.0 / 160.0, 5.0 / 24.0, 1.0 / 6.0];
/// Explicit weights on the old-time viscous term.
pub const ALPHA: [f64; 3] = [29.0 / 96.0, -3.0 / 40.0, 1.0 / 6.0];
/// Weights on the current nonlinear term.
pub const GAMMA: [f64; 3] = [8.0 / 15.0, 5.0 / 12.0, 3.0 / 4.0];
/// Weights on the previous substep's nonlinear term.
pub const ZETA: [f64; 3] = [0.0, -17.0 / 60.0, -5.0 / 12.0];

/// Fraction of `dt` elapsed at the end of substep `i`.
pub fn substep_time_fraction(i: usize) -> f64 {
    (0..=i).map(|j| ALPHA[j] + BETA[j]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_consistent() {
        // each substep advances by (alpha+beta) = (gamma+zeta)
        for i in 0..3 {
            assert!(
                (ALPHA[i] + BETA[i] - GAMMA[i] - ZETA[i]).abs() < 1e-15,
                "substep {i}"
            );
        }
        // the three substeps sum to one full step
        let total: f64 = (0..3).map(|i| ALPHA[i] + BETA[i]).sum();
        assert!((total - 1.0).abs() < 1e-15);
        assert!((substep_time_fraction(2) - 1.0).abs() < 1e-15);
    }

    fn integrate(l: f64, dt: f64, steps: usize) -> f64 {
        // du/dt = L u + sin(u), L implicit, sin(u) explicit
        let mut u = 1.0_f64;
        for _ in 0..steps {
            let mut n_old = 0.0;
            for i in 0..3 {
                let n = u.sin();
                let rhs = u + dt * (ALPHA[i] * l * u + GAMMA[i] * n + ZETA[i] * n_old);
                u = rhs / (1.0 - dt * BETA[i] * l);
                n_old = n;
            }
        }
        u
    }

    #[test]
    fn explicit_part_is_third_order() {
        // with L = 0 the scheme reduces to the pure explicit RK3, which
        // must converge at third order
        let exact = integrate(0.0, 1e-5, 100_000); // t = 1
        let e1 = (integrate(0.0, 0.01, 100) - exact).abs();
        let e2 = (integrate(0.0, 0.005, 200) - exact).abs();
        let rate = (e1 / e2).log2();
        assert!(rate > 2.7, "observed explicit order {rate}");
    }

    #[test]
    fn combined_imex_scheme_is_at_least_second_order() {
        // the implicit (viscous) treatment of SMR'91 is formally
        // second-order; the combined problem must show clean order 2
        let exact = integrate(-2.0, 1e-5, 100_000);
        let e1 = (integrate(-2.0, 0.01, 100) - exact).abs();
        let e2 = (integrate(-2.0, 0.005, 200) - exact).abs();
        let rate = (e1 / e2).log2();
        assert!(rate > 1.9, "observed IMEX order {rate}");
    }

    #[test]
    fn implicit_part_is_second_order_stiffly_stable() {
        // pure diffusion du/dt = L u must be advanced stably for
        // dt |L| >> 1 (IMEX property): amplification magnitude < 1
        let l = -1e4;
        let dt = 0.1;
        let mut u = 1.0_f64;
        for _ in 0..50 {
            for i in 0..3 {
                let rhs = u * (1.0 + dt * ALPHA[i] * l);
                u = rhs / (1.0 - dt * BETA[i] * l);
            }
        }
        assert!(u.abs() < 1.0, "unstable: {u}");
    }
}
