//! Turbulent-kinetic-energy budget diagnostics: the production and
//! dissipation profiles that, together with the figures-5/6 statistics,
//! make up the reference data products of channel DNS (Kim, Moin &
//! Moser 1987; Lee & Moser 2015).
//!
//! For statistically steady channel flow the integrated budget closes:
//! total production equals total dissipation, and both equal the work
//! done by the pressure gradient on the fluctuating field.

use crate::solver::ChannelDns;
use crate::wallnormal::dy_coefficients;
use crate::C64;
use dns_bspline::integration_weights;

/// TKE budget profiles at the collocation points.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Collocation points.
    pub y: Vec<f64>,
    /// Production `P(y) = -<u'v'> d<u>/dy`.
    pub production: Vec<f64>,
    /// Pseudo-dissipation `eps(y) = nu <du_i'/dx_j du_i'/dx_j>`.
    pub dissipation: Vec<f64>,
    /// y-integrated production.
    pub total_production: f64,
    /// y-integrated dissipation.
    pub total_dissipation: f64,
}

/// Compute the production and dissipation profiles (collective).
pub fn budget(dns: &ChannelDns) -> Budget {
    let ny = dns.params().ny;
    let nu = dns.params().nu;
    let ops = dns.ops();

    // accumulators: uv, du/dy-mean coefficients handled after reduce;
    // dissipation accumulates nu * sum |ikx u|^2 + |du/dy|^2 + |ikz u|^2
    // over components and modes
    let mut acc = vec![0.0f64; 3 * ny]; // [uv, eps, u_mean]
    let mut vals = vec![C64::new(0.0, 0.0); ny];
    let mut vals_v = vec![C64::new(0.0, 0.0); ny];
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) {
            continue;
        }
        let r = dns.line_range(m);
        if dns.is_mean(m) {
            ops.b0()
                .matvec_complex(&dns.state().u()[r.clone()], &mut vals);
            for j in 0..ny {
                acc[2 * ny + j] += vals[j].re;
            }
            continue;
        }
        let (ikx, ikz, _) = dns.mode_wavenumbers(m);
        let w = dns.mode_weight(m);
        // <u'v'>
        ops.b0()
            .matvec_complex(&dns.state().u()[r.clone()], &mut vals);
        ops.b0()
            .matvec_complex(&dns.state().v()[r.clone()], &mut vals_v);
        for j in 0..ny {
            acc[j] += w * (vals[j] * vals_v[j].conj()).re;
        }
        // dissipation: all nine gradient components, mode by mode
        for field in [dns.state().u(), dns.state().v(), dns.state().w()] {
            let line = &field[r.clone()];
            ops.b0().matvec_complex(line, &mut vals);
            let ddy = dy_coefficients(ops, line);
            ops.b0().matvec_complex(&ddy, &mut vals_v);
            for j in 0..ny {
                let gx = (ikx * vals[j]).norm_sqr();
                let gz = (ikz * vals[j]).norm_sqr();
                let gy = vals_v[j].norm_sqr();
                acc[ny + j] += w * nu * (gx + gy + gz);
            }
        }
    }
    let acc = dns.pfft().comm_a().allreduce(&acc, |a, b| a + b);
    let acc = dns.pfft().comm_b().allreduce(&acc, |a, b| a + b);

    let uv = &acc[..ny];
    let eps = acc[ny..2 * ny].to_vec();
    let u_mean = &acc[2 * ny..];
    // d<u>/dy at the collocation points
    let mean_coef = ops.interpolate(u_mean);
    let mut dudy = vec![0.0; ny];
    ops.b1().matvec(&mean_coef, &mut dudy);
    let production: Vec<f64> = uv.iter().zip(&dudy).map(|(&uv, &s)| -uv * s).collect();

    let wts = integration_weights(ops);
    let total_production: f64 = production.iter().zip(&wts).map(|(p, w)| p * w).sum();
    let total_dissipation: f64 = eps.iter().zip(&wts).map(|(e, w)| e * w).sum();
    Budget {
        y: ops.points().to_vec(),
        production,
        dissipation: eps,
        total_production,
        total_dissipation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::solver::run_serial;

    #[test]
    fn laminar_flow_has_no_turbulent_budget() {
        let p = Params::channel(16, 25, 16, 50.0);
        let b = run_serial(p, |dns| {
            dns.set_laminar(1.0);
            budget(dns)
        });
        assert!(b.total_production.abs() < 1e-18);
        assert!(b.total_dissipation.abs() < 1e-18);
    }

    #[test]
    fn dissipation_is_positive_and_production_tracks_shear() {
        let p = Params::channel(16, 33, 16, 120.0).with_dt(5e-4);
        let b = run_serial(p, |dns| {
            dns.set_laminar(0.4);
            dns.add_perturbation(0.3, 17);
            for _ in 0..50 {
                dns.step();
            }
            budget(dns)
        });
        assert!(b.dissipation.iter().all(|&e| e >= 0.0));
        assert!(b.total_dissipation > 0.0);
        // with shear and growing streaks, net production is positive
        assert!(b.total_production > 0.0, "P = {}", b.total_production);
    }

    #[test]
    fn dissipation_rate_matches_energy_decay_in_unforced_flow() {
        // without forcing or mean flow, dE/dt = -integral(eps): check the
        // identity numerically over a short window
        let mut p = Params::channel(16, 33, 16, 30.0).with_dt(2.5e-4);
        p.forcing = crate::params::Forcing::None;
        let (de_dt, eps) = run_serial(p, |dns| {
            dns.add_perturbation(0.3, 5);
            // settle one step so the state is solver-consistent
            dns.step();
            let e0 = crate::stats::kinetic_energy(dns);
            let b0 = budget(dns);
            let n = 4;
            for _ in 0..n {
                dns.step();
            }
            let e1 = crate::stats::kinetic_energy(dns);
            let b1 = budget(dns);
            (
                (e1 - e0) / (n as f64 * dns.params().dt),
                -0.5 * (b0.total_dissipation + b1.total_dissipation),
            )
        });
        assert!(
            (de_dt - eps).abs() < 0.05 * eps.abs(),
            "dE/dt = {de_dt}, -eps = {eps}"
        );
    }
}
