//! The channel-flow DNS driver: state, mode bookkeeping and the RK3
//! timestep (section 2.3's steps (a)-(j)).

use std::ops::Range;

use dns_bspline::{integration_weights, tanh_breakpoints, BsplineBasis, CollocationOps};
use dns_minimpi::Communicator;
use dns_pfft::{ParallelFft, PfftConfig};
use dns_telemetry as telemetry;

use crate::nonlinear::{self, NlTerms, NlWorkspace};
use crate::params::Params;
use crate::rk3;
use crate::wallnormal::{
    dy_coefficients, dy_coefficients_into, dy_coefficients_panel, BatchNormalSolver, MeanSolver,
    ModeSolver,
};
use crate::C64;
use dns_banded::RhsPanel;

/// Classification of a locally-owned horizontal wavenumber.
enum ModeKind {
    /// `(kx, kz) = (0, 0)`: the mean flow.
    Mean,
    /// The structurally-zero spanwise Nyquist slot.
    NyquistZ,
    /// A regular mode with its factored wall-normal operators (scalar
    /// per-mode path, `Params::batched = false`).
    Normal(Box<ModeSolver>),
    /// A regular mode whose solves run through the rank-wide
    /// [`BatchNormalSolver`] panels.
    Batched,
}

/// Prognostic and derived spectral fields, stored as B-spline
/// *coefficients* in the y-pencil layout `[kz_loc][kx_loc][ny]`.
/// Mode `(0,0)` of `u`/`w` carries the mean flow; `omega_y`/`phi` are
/// unused there.
pub struct State {
    u: Vec<C64>,
    v: Vec<C64>,
    w: Vec<C64>,
    omega_y: Vec<C64>,
    phi: Vec<C64>,
    /// Simulated time.
    pub time: f64,
    /// Completed timesteps.
    pub steps: u64,
}

impl State {
    /// Streamwise velocity coefficients.
    pub fn u(&self) -> &[C64] {
        &self.u
    }
    /// Wall-normal velocity coefficients.
    pub fn v(&self) -> &[C64] {
        &self.v
    }
    /// Spanwise velocity coefficients.
    pub fn w(&self) -> &[C64] {
        &self.w
    }
    /// Wall-normal vorticity coefficients.
    pub fn omega_y(&self) -> &[C64] {
        &self.omega_y
    }
    /// `phi = laplacian(v)` coefficients.
    pub fn phi(&self) -> &[C64] {
        &self.phi
    }
}

/// Wall-clock accumulators for the paper's three timestep phases.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimers {
    /// Global transposes (from the parallel-FFT layer).
    pub transpose: f64,
    /// Serial FFT work (from the parallel-FFT layer).
    pub fft: f64,
    /// Wall-normal solves and RHS assembly.
    pub ns_advance: f64,
}

/// Reusable per-substep buffers for `advance_substep` (mean-profile
/// staging, Helmholtz `B0 c`/`B2 c` scratch, derivative lines) — after
/// the first step these never reallocate.
#[derive(Default)]
struct StepScratch {
    r0: Vec<f64>,
    r1: Vec<f64>,
    r2: Vec<f64>,
    r3: Vec<f64>,
    r4: Vec<f64>,
    c0: Vec<C64>,
    c1: Vec<C64>,
    /// Batched-path panels (sized on first use, grow-only thereafter):
    /// prognostic columns, new/old nonlinear terms, `B0 c`/`B2 c` matvec
    /// scratch, and the recovered `v` columns.
    pc: RhsPanel,
    pn: RhsPanel,
    po: RhsPanel,
    pb0: RhsPanel,
    pb2: RhsPanel,
    pv: RhsPanel,
}

/// A distributed channel DNS bound to one rank of a `pa x pb` grid.
pub struct ChannelDns {
    params: Params,
    pfft: ParallelFft,
    ops: CollocationOps,
    modes: Vec<ModeKind>,
    /// The rank-wide batched wall-normal solver (`Params::batched`);
    /// `None` when every normal mode carries its own [`ModeSolver`], or
    /// when the rank owns no normal modes.
    batch: Option<BatchNormalSolver>,
    /// Local mode indices behind `batch`, in panel-column order.
    batch_modes: Vec<usize>,
    mean: MeanSolver,
    state: State,
    ns_seconds: f64,
    /// Quadrature weights for y integrals (flux control, diagnostics).
    y_weights: Vec<f64>,
    /// Body force currently applied by the mass-flux controller.
    dyn_force: f64,
    /// Integral term of the flux controller (the learned steady drag).
    flux_integral: f64,
    /// Persistent nonlinear-pipeline workspace (taken out of `self` for
    /// the duration of each step, so the hot path never allocates).
    nl_ws: NlWorkspace,
    /// Ping-pong nonlinear-term buffers (current / previous substep).
    nl_terms: NlTerms,
    nl_terms_old: NlTerms,
    scratch: StepScratch,
    /// Optional time-averaged statistics accumulator, sampled at the end
    /// of [`step`](Self::step) on its own cadence (same opt-in pattern
    /// as the run-health hook; `None` costs one branch per step).
    stats: Option<crate::stats::StatsAccumulator>,
}

impl ChannelDns {
    /// Collectively construct the solver (all ranks of `world` call this
    /// with identical parameters; `world.size() == pa * pb`).
    pub fn new(world: Communicator, params: Params) -> ChannelDns {
        params.validate();
        let cfg = PfftConfig::customized(params.nx, params.ny, params.nz, params.pa, params.pb)
            .with_dealias()
            .with_threads(params.fft_threads)
            .with_pipeline(params.pipeline);
        let pfft = ParallelFft::new(world, cfg);
        let breaks = tanh_breakpoints(params.ny - params.spline_order + 1, params.grid_stretch);
        let basis = BsplineBasis::new(params.spline_order, &breaks);
        let ops = CollocationOps::new(&basis);
        assert_eq!(ops.n(), params.ny, "basis size must equal ny");

        let kxb = pfft.kx_block();
        let kzb = pfft.kz_block();
        let mut modes = Vec::with_capacity(kxb.len * kzb.len);
        let mut batch_modes = Vec::new();
        let mut batch_k2 = Vec::new();
        for kzl in 0..kzb.len {
            let kz_g = kzb.global(kzl);
            for kxl in 0..kxb.len {
                let kx_g = kxb.global(kxl);
                let kind = if kz_g == params.nz / 2 {
                    ModeKind::NyquistZ
                } else if kx_g == 0 && kz_g == 0 {
                    ModeKind::Mean
                } else {
                    let kx = params.alpha() * kx_g as f64;
                    let kz = params.beta() * signed(kz_g, params.nz) as f64;
                    let k2 = kx * kx + kz * kz;
                    if params.batched {
                        batch_modes.push(modes.len());
                        batch_k2.push(k2);
                        ModeKind::Batched
                    } else {
                        ModeKind::Normal(Box::new(ModeSolver::new(&ops, k2, params.nu, params.dt)))
                    }
                };
                modes.push(kind);
            }
        }
        let batch = (!batch_k2.is_empty())
            .then(|| BatchNormalSolver::new(&ops, &batch_k2, params.nu, params.dt));
        let mean = MeanSolver::new(&ops, params.nu, params.dt);
        let y_weights = integration_weights(&ops);
        let dyn_force = match params.forcing {
            crate::params::Forcing::ConstantMassFlux { .. } => 1.0,
            _ => params.pressure_gradient(),
        };
        let len = kxb.len * kzb.len * params.ny;
        let zero = vec![C64::new(0.0, 0.0); len];
        ChannelDns {
            params,
            pfft,
            ops,
            modes,
            batch,
            batch_modes,
            mean,
            state: State {
                u: zero.clone(),
                v: zero.clone(),
                w: zero.clone(),
                omega_y: zero.clone(),
                phi: zero,
                time: 0.0,
                steps: 0,
            },
            ns_seconds: 0.0,
            y_weights,
            dyn_force,
            flux_integral: dyn_force,
            nl_ws: NlWorkspace::default(),
            nl_terms: NlTerms::default(),
            nl_terms_old: NlTerms::default(),
            scratch: StepScratch::default(),
            stats: None,
        }
    }

    /// The body force currently driving the mean flow (the configured
    /// pressure gradient, or the mass-flux controller's output).
    pub fn current_force(&self) -> f64 {
        self.dyn_force
    }

    /// The mass-flux controller's internal state `(dyn_force,
    /// flux_integral)`. Part of the checkpointed trajectory: under
    /// `Forcing::ConstantMassFlux` a restart that resets the controller
    /// would diverge from the uninterrupted run.
    pub fn controller_state(&self) -> (f64, f64) {
        (self.dyn_force, self.flux_integral)
    }

    /// Restore the mass-flux controller state captured by
    /// [`controller_state`](Self::controller_state) (checkpoint restart).
    pub fn restore_controller(&mut self, dyn_force: f64, flux_integral: f64) {
        self.dyn_force = dyn_force;
        self.flux_integral = flux_integral;
    }

    /// Turn on time-averaged statistics collection with the given
    /// sampling policy (fresh accumulator). A restored accumulator
    /// installed by [`restore_stats`](Self::restore_stats) should be
    /// kept instead — see the resume-continuity contract there.
    pub fn enable_stats(&mut self, cfg: crate::stats::StatsConfig) {
        self.stats = Some(crate::stats::StatsAccumulator::new(cfg));
    }

    /// The statistics accumulator, when collection is enabled.
    pub fn stats(&self) -> Option<&crate::stats::StatsAccumulator> {
        self.stats.as_ref()
    }

    /// Install an accumulator restored from a checkpoint, replacing any
    /// current one. Checkpoint restore uses this so a resumed run
    /// continues averaging bit-exactly where the crashed run stopped —
    /// the accumulator is part of the checkpointed trajectory, like the
    /// mass-flux controller.
    pub fn restore_stats(&mut self, acc: crate::stats::StatsAccumulator) {
        self.stats = Some(acc);
    }

    /// Simulation parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }
    /// The wall-normal collocation apparatus.
    pub fn ops(&self) -> &CollocationOps {
        &self.ops
    }
    /// The parallel transform pipeline.
    pub fn pfft(&self) -> &ParallelFft {
        &self.pfft
    }
    /// Current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Length of one spectral field on this rank.
    pub fn field_len(&self) -> usize {
        self.state.u.len()
    }

    /// Number of locally-owned horizontal wavenumbers.
    pub fn local_modes(&self) -> usize {
        self.modes.len()
    }

    /// Index range of mode `m`'s y-line within a spectral field.
    pub fn line_range(&self, m: usize) -> Range<usize> {
        let ny = self.params.ny;
        m * ny..(m + 1) * ny
    }

    /// `(i kx, i kz, k^2)` of local mode `m`.
    pub fn mode_wavenumbers(&self, m: usize) -> (C64, C64, f64) {
        let kxlen = self.pfft.kx_block().len;
        let kx_g = self.pfft.kx_block().global(m % kxlen);
        let kz_g = self.pfft.kz_block().global(m / kxlen);
        let kx = self.params.alpha() * kx_g as f64;
        let kz = self.params.beta() * signed(kz_g, self.params.nz) as f64;
        (C64::new(0.0, kx), C64::new(0.0, kz), kx * kx + kz * kz)
    }

    /// Whether local mode `m` is the spanwise Nyquist slot.
    pub fn is_nyquist(&self, m: usize) -> bool {
        matches!(self.modes[m], ModeKind::NyquistZ)
    }

    /// Whether local mode `m` is the mean mode (0,0).
    pub fn is_mean(&self, m: usize) -> bool {
        matches!(self.modes[m], ModeKind::Mean)
    }

    /// Weight of mode `m` in statistics sums (2 for `kx > 0`, whose
    /// conjugate partner is not stored; 1 on the `kx = 0` plane).
    pub fn mode_weight(&self, m: usize) -> f64 {
        let kxlen = self.pfft.kx_block().len;
        if self.pfft.kx_block().global(m % kxlen) > 0 {
            2.0
        } else {
            1.0
        }
    }

    /// Evaluate a coefficient field at the collocation points, line by
    /// line (`B0 c`).
    pub fn field_values(&self, coef: &[C64]) -> Vec<C64> {
        let ny = self.params.ny;
        let mut out = vec![C64::new(0.0, 0.0); coef.len()];
        for (cl, ol) in coef.chunks_exact(ny).zip(out.chunks_exact_mut(ny)) {
            self.ops.b0().matvec_complex(cl, ol);
        }
        out
    }

    /// Set the mean flow to the laminar Poiseuille equilibrium of the
    /// configured pressure gradient: `u = F (1 - y^2) / (2 nu)` scaled by
    /// `scale` (1.0 = exact balance).
    pub fn set_laminar(&mut self, scale: f64) {
        let f = self.params.pressure_gradient();
        let nu = self.params.nu;
        let prof: Vec<f64> = self
            .ops
            .points()
            .iter()
            .map(|&y| scale * f * (1.0 - y * y) / (2.0 * nu))
            .collect();
        let coef = self.ops.interpolate(&prof);
        for m in 0..self.local_modes() {
            if self.is_mean(m) {
                let r = self.line_range(m);
                for (slot, &c) in self.state.u[r].iter_mut().zip(&coef) {
                    *slot = C64::new(c, 0.0);
                }
            }
        }
    }

    /// Set the mean flow to the Reichardt composite turbulent profile
    /// with friction velocity `u_tau` at the configured `1/nu` friction
    /// Reynolds number — the right starting mean for turbulent runs
    /// (the laminar equilibrium at the same pressure gradient is ~6x
    /// faster and violates any practical CFL limit).
    pub fn set_turbulent_mean(&mut self, u_tau: f64) {
        let re_tau = u_tau / self.params.nu;
        let prof: Vec<f64> = self
            .ops
            .points()
            .iter()
            .map(|&y| {
                let y_plus = (1.0 - y.abs()) * re_tau;
                u_tau * crate::stats::reichardt_u_plus(y_plus)
            })
            .collect();
        let coef = self.ops.interpolate(&prof);
        for m in 0..self.local_modes() {
            if self.is_mean(m) {
                let r = self.line_range(m);
                for (slot, &c) in self.state.u[r].iter_mut().zip(&coef) {
                    *slot = C64::new(c, 0.0);
                }
            }
        }
    }

    /// Add divergence-free perturbations in the low wavenumbers:
    /// per mode, `v ~ (1-y^2)^2` and `omega_y ~ (1-y^2)` with
    /// deterministic pseudo-random complex amplitudes (conjugate-
    /// symmetric on the `kx = 0` plane so physical fields stay real).
    pub fn add_perturbation(&mut self, amplitude: f64, seed: u64) {
        let shape_v: Vec<f64> = self
            .ops
            .points()
            .iter()
            .map(|&y| (1.0 - y * y).powi(2))
            .collect();
        let shape_o: Vec<f64> = self.ops.points().iter().map(|&y| 1.0 - y * y).collect();
        let cv_shape = self.ops.interpolate(&shape_v);
        let co_shape = self.ops.interpolate(&shape_o);
        let nz = self.params.nz;
        let kxlen = self.pfft.kx_block().len;
        for m in 0..self.local_modes() {
            if !matches!(self.modes[m], ModeKind::Normal(_) | ModeKind::Batched) {
                continue;
            }
            let kx_g = self.pfft.kx_block().global(m % kxlen);
            let kz_g = self.pfft.kz_block().global(m / kxlen);
            let kzs = signed(kz_g, nz);
            if kx_g > 3 || kzs.unsigned_abs() as usize > 3 {
                continue;
            }
            // conjugate symmetry on the kx=0 plane: derive both partners
            // from the same key, conjugating the negative-kz one
            let (key_kz, flip) = if kx_g == 0 && kzs < 0 {
                (-kzs, true)
            } else {
                (kzs, false)
            };
            let mut rv = rand_c(seed, kx_g as u64, key_kz as u64, 0);
            let mut ro = rand_c(seed, kx_g as u64, key_kz as u64, 1);
            if flip {
                rv = rv.conj();
                // omega_y of a real field obeys the same conjugate rule
                ro = ro.conj();
            }
            let r = self.line_range(m);
            let ny = self.params.ny;
            for j in 0..ny {
                self.state.v[r.start + j] += amplitude * rv * cv_shape[j];
                self.state.omega_y[r.start + j] += amplitude * ro * co_shape[j];
            }
            // phi = (D2 - k^2) v, interpolated back to coefficients
            let (_, _, k2) = self.mode_wavenumbers(m);
            let cv = &self.state.v[r.clone()];
            let mut vals = vec![C64::new(0.0, 0.0); ny];
            let mut b0v = vec![C64::new(0.0, 0.0); ny];
            self.ops.b2().matvec_complex(cv, &mut vals);
            self.ops.b0().matvec_complex(cv, &mut b0v);
            for j in 0..ny {
                vals[j] -= k2 * b0v[j];
            }
            let cphi = self.ops.interpolate_complex(&vals);
            self.state.phi[r.clone()].copy_from_slice(&cphi);
            self.recover_uw(m);
        }
    }

    /// Seed one horizontal mode `(kx, kz_signed)` with prescribed
    /// wall-normal velocity and vorticity spline coefficients (adding to
    /// whatever is there): `phi` is derived from `v`, and `u`, `w` are
    /// recovered from continuity — the entry point for eigenfunction
    /// initial conditions. Ranks not owning the mode do nothing.
    pub fn seed_mode(&mut self, kx: usize, kz_signed: i64, c_v: &[C64], c_omega: &[C64]) {
        let ny = self.params.ny;
        assert_eq!(c_v.len(), ny);
        assert_eq!(c_omega.len(), ny);
        let kxlen = self.pfft.kx_block().len;
        let nz = self.params.nz;
        for m in 0..self.local_modes() {
            if !matches!(self.modes[m], ModeKind::Normal(_) | ModeKind::Batched) {
                continue;
            }
            let kx_g = self.pfft.kx_block().global(m % kxlen);
            let kz_g = self.pfft.kz_block().global(m / kxlen);
            if kx_g != kx || signed(kz_g, nz) != kz_signed {
                continue;
            }
            let r = self.line_range(m);
            for j in 0..ny {
                self.state.v[r.start + j] += c_v[j];
                self.state.omega_y[r.start + j] += c_omega[j];
            }
            // phi = (D2 - k^2) v, interpolated back to coefficients
            let (_, _, k2) = self.mode_wavenumbers(m);
            let cv = &self.state.v[r.clone()];
            let mut vals = vec![C64::new(0.0, 0.0); ny];
            let mut b0v = vec![C64::new(0.0, 0.0); ny];
            self.ops.b2().matvec_complex(cv, &mut vals);
            self.ops.b0().matvec_complex(cv, &mut b0v);
            for j in 0..ny {
                vals[j] -= k2 * b0v[j];
            }
            let cphi = self.ops.interpolate_complex(&vals);
            self.state.phi[r.clone()].copy_from_slice(&cphi);
            self.recover_uw(m);
        }
    }

    /// Recompute `u`, `w` of mode `m` from `v` and `omega_y` (continuity
    /// plus the vorticity definition).
    fn recover_uw(&mut self, m: usize) {
        let (ikx, ikz, k2) = self.mode_wavenumbers(m);
        let r = self.line_range(m);
        let c_vy = dy_coefficients(&self.ops, &self.state.v[r.clone()]);
        let ny = self.params.ny;
        for j in 0..ny {
            let vy = c_vy[j];
            let om = self.state.omega_y[r.start + j];
            self.state.u[r.start + j] = (ikx * vy - ikz * om) / k2;
            self.state.w[r.start + j] = (ikz * vy + ikx * om) / k2;
        }
    }

    /// Advance one full RK3 timestep. The nonlinear terms run through
    /// the fused pipeline into persistent buffers; at steady state a
    /// single-rank serial substep performs no heap allocation.
    pub fn step(&mut self) {
        let _step = telemetry::span("rk3_step", telemetry::Phase::Other);
        // run-health hook: when monitoring is on, bracket the step with a
        // wall clock and a phase-timer snapshot so per-step latencies land
        // in the global histograms; off, this is one relaxed atomic load
        let health = dns_health::enabled().then(|| (std::time::Instant::now(), self.timers()));
        let dt = self.params.dt;
        // lift the persistent buffers out of `self` for the step (the
        // taken-from slots hold empty Vecs: no allocation either way)
        let mut ws = std::mem::take(&mut self.nl_ws);
        let mut nl = std::mem::take(&mut self.nl_terms);
        let mut n_old = std::mem::take(&mut self.nl_terms_old);
        let mut scratch = std::mem::take(&mut self.scratch);
        n_old.reset(self); // zeta_0 = 0: first substep ignores it anyway
        for i in 0..3 {
            let _substep = telemetry::span("rk3_substep", telemetry::Phase::Other);
            nonlinear::compute_into(self, &mut nl, &mut ws);
            let ns = telemetry::span("ns_advance", telemetry::Phase::NsAdvance);
            let t0 = std::time::Instant::now();
            self.advance_substep(i, &nl, &n_old, &mut scratch);
            self.ns_seconds += t0.elapsed().as_secs_f64();
            drop(ns);
            std::mem::swap(&mut nl, &mut n_old);
            self.state.time += (rk3::ALPHA[i] + rk3::BETA[i]) * dt;
        }
        self.nl_ws = ws;
        self.nl_terms = nl;
        self.nl_terms_old = n_old;
        self.scratch = scratch;
        self.state.steps += 1;
        // statistics hook: sampling is collective, but `due` is a pure
        // function of the (replicated) step counter, so every rank takes
        // the branch identically; disabled, this is one Option check
        if let Some(acc) = &self.stats {
            if acc.due(self.state.steps) {
                let mut acc = self.stats.take().expect("stats present");
                acc.sample(self);
                self.stats = Some(acc);
            }
        }
        if let Some((t0, before)) = health {
            let after = self.timers();
            dns_health::record_step(
                t0.elapsed().as_secs_f64(),
                [
                    after.transpose - before.transpose,
                    after.fft - before.fft,
                    after.ns_advance - before.ns_advance,
                ],
            );
        }
    }

    fn advance_substep(&mut self, i: usize, nl: &NlTerms, n_old: &NlTerms, sc: &mut StepScratch) {
        let ny = self.params.ny;
        let nu = self.params.nu;
        let dt = self.params.dt;
        // mass-flux feedback: only the rank owning the mean mode uses the
        // force, so the controller needs no communication
        if let crate::params::Forcing::ConstantMassFlux { bulk } = self.params.forcing {
            for (m, kind) in self.modes.iter().enumerate() {
                if matches!(kind, ModeKind::Mean) {
                    let r = m * ny..(m + 1) * ny;
                    sc.r0.clear();
                    sc.r0.extend(self.state.u[r].iter().map(|c| c.re));
                    sc.r1.clear();
                    sc.r1.resize(ny, 0.0);
                    self.ops.b0().matvec(&sc.r0, &mut sc.r1);
                    let current: f64 = sc
                        .r1
                        .iter()
                        .zip(&self.y_weights)
                        .map(|(u, w)| u * w)
                        .sum::<f64>()
                        / 2.0;
                    // PI controller: the proportional part closes most
                    // of the gap within a step; the small integral part
                    // learns the steady drag without overshoot
                    let gap = (bulk - current) / dt;
                    self.flux_integral = (self.flux_integral + 0.02 * gap).clamp(-100.0, 100.0);
                    self.dyn_force = (self.flux_integral + 0.4 * gap).clamp(-100.0, 100.0);
                }
            }
        }
        let f = self.dyn_force;
        let ops = &self.ops;
        let state = &mut self.state;
        // Batched path: all normal modes advance as multi-RHS panels —
        // gather the y-lines into SoA panels, sweep each banded system
        // once across every mode, scatter back. Same per-mode arithmetic
        // as the scalar arm below, vectorised over the mode index.
        if let Some(batch) = &self.batch {
            let w = batch.width();
            sc.pc.reset(ny, w);
            sc.pn.reset(ny, w);
            sc.po.reset(ny, w);
            sc.pb0.reset(ny, w);
            sc.pb2.reset(ny, w);
            sc.pv.reset(ny, w);
            // omega_y: advance through the substep's Helmholtz solve
            for (r, &m) in self.batch_modes.iter().enumerate() {
                let rng = m * ny..(m + 1) * ny;
                sc.pc.load_col(r, &state.omega_y[rng.clone()]);
                sc.pn.load_col(r, &nl.h_g[rng.clone()]);
                sc.po.load_col(r, &n_old.h_g[rng]);
            }
            batch.advance_panel(
                ops,
                i,
                &mut sc.pc,
                &sc.pn,
                &sc.po,
                nu,
                dt,
                &mut sc.pb0,
                &mut sc.pb2,
            );
            for (r, &m) in self.batch_modes.iter().enumerate() {
                sc.pc.store_col(r, &mut state.omega_y[m * ny..(m + 1) * ny]);
            }
            // phi: advance, then recover v with the influence correction
            for (r, &m) in self.batch_modes.iter().enumerate() {
                let rng = m * ny..(m + 1) * ny;
                sc.pc.load_col(r, &state.phi[rng.clone()]);
                sc.pn.load_col(r, &nl.h_v[rng.clone()]);
                sc.po.load_col(r, &n_old.h_v[rng]);
            }
            batch.advance_panel(
                ops,
                i,
                &mut sc.pc,
                &sc.pn,
                &sc.po,
                nu,
                dt,
                &mut sc.pb0,
                &mut sc.pb2,
            );
            batch.solve_v_panel(ops, i, &mut sc.pc, &mut sc.pv);
            for (r, &m) in self.batch_modes.iter().enumerate() {
                sc.pc.store_col(r, &mut state.phi[m * ny..(m + 1) * ny]);
                sc.pv.store_col(r, &mut state.v[m * ny..(m + 1) * ny]);
            }
            // u, w recovery: dv/dy for the whole panel, then per-mode
            // combination with omega_y
            dy_coefficients_panel(ops, &sc.pv, &mut sc.pb0);
            let kxlen = self.pfft.kx_block().len;
            for (r, &m) in self.batch_modes.iter().enumerate() {
                let kx_g = self.pfft.kx_block().global(m % kxlen);
                let kz_g = self.pfft.kz_block().global(m / kxlen);
                let kx = self.params.alpha() * kx_g as f64;
                let kz = self.params.beta() * signed(kz_g, self.params.nz) as f64;
                let (ikx, ikz, k2) = (C64::new(0.0, kx), C64::new(0.0, kz), kx * kx + kz * kz);
                let base = m * ny;
                for j in 0..ny {
                    let vy = sc.pb0.at(j, r);
                    let om = state.omega_y[base + j];
                    state.u[base + j] = (ikx * vy - ikz * om) / k2;
                    state.w[base + j] = (ikz * vy + ikx * om) / k2;
                }
            }
        }
        for (m, kind) in self.modes.iter().enumerate() {
            let r = m * ny..(m + 1) * ny;
            match kind {
                ModeKind::NyquistZ => {}
                ModeKind::Batched => {}
                ModeKind::Mean => {
                    // <u>: forced by the pressure gradient and -d<uv>/dy
                    sc.r0.clear();
                    sc.r0.extend(state.u[r.clone()].iter().map(|c| c.re));
                    sc.r1.clear();
                    sc.r1.extend(nl.mean_hx.iter().map(|h| h + f));
                    sc.r2.clear();
                    sc.r2.extend(n_old.mean_hx.iter().map(|h| h + f));
                    sc.r3.resize(ny, 0.0);
                    sc.r4.resize(ny, 0.0);
                    self.mean.advance_in(
                        ops, i, &mut sc.r0, &sc.r1, &sc.r2, nu, dt, &mut sc.r3, &mut sc.r4,
                    );
                    for (slot, &c) in state.u[r.clone()].iter_mut().zip(&sc.r0) {
                        *slot = C64::new(c, 0.0);
                    }
                    // <w>: unforced
                    sc.r0.clear();
                    sc.r0.extend(state.w[r.clone()].iter().map(|c| c.re));
                    self.mean.advance_in(
                        ops,
                        i,
                        &mut sc.r0,
                        &nl.mean_hz,
                        &n_old.mean_hz,
                        nu,
                        dt,
                        &mut sc.r3,
                        &mut sc.r4,
                    );
                    for (slot, &c) in state.w[r].iter_mut().zip(&sc.r0) {
                        *slot = C64::new(c, 0.0);
                    }
                }
                ModeKind::Normal(ms) => {
                    sc.c0.resize(ny, C64::new(0.0, 0.0));
                    sc.c1.resize(ny, C64::new(0.0, 0.0));
                    ms.advance_in(
                        ops,
                        i,
                        &mut state.omega_y[r.clone()],
                        &nl.h_g[r.clone()],
                        &n_old.h_g[r.clone()],
                        nu,
                        dt,
                        &mut sc.c0,
                        &mut sc.c1,
                    );
                    ms.advance_in(
                        ops,
                        i,
                        &mut state.phi[r.clone()],
                        &nl.h_v[r.clone()],
                        &n_old.h_v[r.clone()],
                        nu,
                        dt,
                        &mut sc.c0,
                        &mut sc.c1,
                    );
                    // v straight into the state (phi and v are disjoint
                    // fields, so both lines borrow mutably at once)
                    let (phi_line, v_line) = (&mut state.phi[r.clone()], &mut state.v[r.clone()]);
                    ms.solve_v_into(ops, i, phi_line, v_line);
                    // u, w recovery
                    let (ikx, ikz, k2) = {
                        let kxlen = self.pfft.kx_block().len;
                        let kx_g = self.pfft.kx_block().global(m % kxlen);
                        let kz_g = self.pfft.kz_block().global(m / kxlen);
                        let kx = self.params.alpha() * kx_g as f64;
                        let kz = self.params.beta() * signed(kz_g, self.params.nz) as f64;
                        (C64::new(0.0, kx), C64::new(0.0, kz), kx * kx + kz * kz)
                    };
                    dy_coefficients_into(ops, &state.v[r.clone()], &mut sc.c0, &mut sc.c1);
                    for j in 0..ny {
                        let om = state.omega_y[r.start + j];
                        state.u[r.start + j] = (ikx * sc.c0[j] - ikz * om) / k2;
                        state.w[r.start + j] = (ikz * sc.c0[j] + ikx * om) / k2;
                    }
                }
            }
        }
    }

    /// Phase timers accumulated since the last reset (transpose/FFT from
    /// the transform layer, N-S advance measured here).
    pub fn timers(&self) -> PhaseTimers {
        let t = self.pfft.timers();
        PhaseTimers {
            transpose: t.transpose,
            fft: t.fft,
            ns_advance: self.ns_seconds,
        }
    }

    /// Zero the phase timers.
    pub fn reset_timers(&mut self) {
        self.pfft.reset_timers();
        self.ns_seconds = 0.0;
    }

    /// Replace the spectral state wholesale (checkpoint restart).
    ///
    /// # Panics
    /// If any field length differs from this rank's layout.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_state(
        &mut self,
        u: Vec<C64>,
        v: Vec<C64>,
        w: Vec<C64>,
        omega_y: Vec<C64>,
        phi: Vec<C64>,
        time: f64,
        steps: u64,
    ) {
        let len = self.field_len();
        for f in [&u, &v, &w, &omega_y, &phi] {
            assert_eq!(f.len(), len, "restored field length mismatch");
        }
        self.state.u = u;
        self.state.v = v;
        self.state.w = w;
        self.state.omega_y = omega_y;
        self.state.phi = phi;
        self.state.time = time;
        self.state.steps = steps;
    }

    /// Advective CFL number of the current state (collective):
    /// `dt * max(|u|/dx + |v|/dy_local + |w|/dz)` over the dealiased
    /// grid. Keep it comfortably below ~1.7 (the RK3 stability limit on
    /// the imaginary axis) — above that the run will go unstable.
    pub fn cfl(&self) -> f64 {
        let phys_u = self.pfft.inverse(&self.field_values(self.state.u()));
        let phys_v = self.pfft.inverse(&self.field_values(self.state.v()));
        let phys_w = self.pfft.inverse(&self.field_values(self.state.w()));
        let px = self.pfft.config().px();
        let pzn = self.pfft.config().pz();
        let dx = self.params.lx / px as f64;
        let dz = self.params.lz / pzn as f64;
        // local wall-normal spacing at each collocation point
        let pts = self.ops.points();
        let dy: Vec<f64> = (0..pts.len())
            .map(|j| {
                let lo = if j > 0 {
                    pts[j] - pts[j - 1]
                } else {
                    pts[1] - pts[0]
                };
                let hi = if j + 1 < pts.len() {
                    pts[j + 1] - pts[j]
                } else {
                    pts[j] - pts[j - 1]
                };
                lo.min(hi)
            })
            .collect();
        let zpl = self.pfft.zphys_block().len;
        let mut worst = 0.0f64;
        let mut idx = 0;
        for yl in 0..self.pfft.y_block().len {
            let dyj = dy[self.pfft.y_block().global(yl)];
            for _z in 0..zpl {
                for _x in 0..px {
                    let c =
                        phys_u[idx].abs() / dx + phys_v[idx].abs() / dyj + phys_w[idx].abs() / dz;
                    worst = worst.max(c);
                    idx += 1;
                }
            }
        }
        let worst = self.pfft.comm_a().allreduce_max(worst);
        let worst = self.pfft.comm_b().allreduce_max(worst);
        worst * self.params.dt
    }
}

/// Signed spanwise wavenumber index of FFT-ordered slot `g`.
fn signed(g: usize, nz: usize) -> i64 {
    if g < nz / 2 {
        g as i64
    } else if g == nz / 2 {
        0
    } else {
        g as i64 - nz as i64
    }
}

/// Deterministic unit-magnitude-ish complex amplitude from a hash.
fn rand_c(seed: u64, a: u64, b: u64, c: u64) -> C64 {
    let mut s = seed
        ^ a.wrapping_mul(0x9E3779B97F4A7C15)
        ^ b.wrapping_mul(0xC2B2AE3D27D4EB4F)
        ^ c.wrapping_mul(0x165667B19E3779F9);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    C64::new(next(), next())
}

/// Run a function on a freshly built DNS on `pa * pb` rank threads;
/// returns the per-rank results.
pub fn run_parallel<F, R>(params: Params, f: F) -> Vec<R>
where
    F: Fn(&mut ChannelDns) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    let n = params.pa * params.pb;
    dns_minimpi::run(n, move |world| {
        let mut dns = ChannelDns::new(world, params.clone());
        f(&mut dns)
    })
}

/// Single-rank convenience wrapper around [`run_parallel`].
pub fn run_serial<F, R>(params: Params, f: F) -> R
where
    F: Fn(&mut ChannelDns) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    assert_eq!(params.pa * params.pb, 1, "run_serial needs a 1x1 grid");
    run_parallel(params, f).pop().expect("one rank")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn tiny_params() -> Params {
        Params::channel(16, 25, 16, 50.0).with_dt(2e-3)
    }

    #[test]
    fn laminar_poiseuille_is_a_steady_state_of_the_full_solver() {
        let prof = run_serial(tiny_params(), |dns| {
            dns.set_laminar(1.0);
            let before = stats::profiles(dns);
            for _ in 0..5 {
                dns.step();
            }
            let after = stats::profiles(dns);
            (before, after)
        });
        let (before, after) = prof;
        for (a, b) in before.u_mean.iter().zip(&after.u_mean) {
            assert!(
                (a - b).abs() < 1e-8 * before.u_mean[12].abs().max(1.0),
                "{a} vs {b}"
            );
        }
        // fluctuations remain zero
        assert!(after.uu.iter().all(|&x| x.abs() < 1e-16));
    }

    #[test]
    fn perturbed_field_is_divergence_free_and_stays_so() {
        use crate::stats::max_divergence;
        let max_div = run_serial(tiny_params(), |dns| {
            dns.set_laminar(1.0);
            dns.add_perturbation(0.05, 7);
            let d0 = max_divergence(dns);
            for _ in 0..3 {
                dns.step();
            }
            (d0, max_divergence(dns))
        });
        assert!(max_div.0 < 1e-10, "initial divergence {}", max_div.0);
        assert!(max_div.1 < 1e-8, "evolved divergence {}", max_div.1);
    }

    #[test]
    fn no_slip_walls_hold_for_all_velocity_components() {
        let worst = run_serial(tiny_params(), |dns| {
            dns.set_laminar(1.0);
            dns.add_perturbation(0.05, 3);
            for _ in 0..3 {
                dns.step();
            }
            let mut worst = 0.0f64;
            let basis = dns.ops().basis().clone();
            for m in 0..dns.local_modes() {
                if dns.is_nyquist(m) {
                    continue;
                }
                let r = dns.line_range(m);
                for field in [dns.state().u(), dns.state().v(), dns.state().w()] {
                    let line = &field[r.clone()];
                    for part in [
                        line.iter().map(|c| c.re).collect::<Vec<_>>(),
                        line.iter().map(|c| c.im).collect::<Vec<_>>(),
                    ] {
                        worst = worst.max(basis.eval(&part, -1.0).abs());
                        worst = worst.max(basis.eval(&part, 1.0).abs());
                    }
                }
            }
            worst
        });
        assert!(worst < 1e-9, "wall velocity {worst}");
    }

    #[test]
    fn mean_momentum_grows_at_the_forced_rate_from_rest() {
        // from rest, d(bulk u)/dt = F exactly until shear develops
        let (u0, u1, dtn) = run_serial(tiny_params().with_dt(1e-3), |dns| {
            let b0 = stats::profiles(dns).bulk_velocity;
            for _ in 0..5 {
                dns.step();
            }
            (b0, stats::profiles(dns).bulk_velocity, dns.state().time)
        });
        // the wall shear reduces the growth slightly; allow 10%
        let want = dtn * 1.0;
        assert!(u0.abs() < 1e-14);
        assert!((u1 - want).abs() < 0.1 * want, "{u1} vs {want}");
    }

    #[test]
    fn inviscid_energy_is_conserved_by_the_nonlinear_terms() {
        // nu tiny, no forcing: the dealiased divergence-form convection
        // must not create energy; drift per step should be tiny.
        let mut p = tiny_params().with_dt(5e-4);
        p.nu = 1e-8;
        p.forcing = crate::params::Forcing::None;
        let (e0, e1) = run_serial(p, |dns| {
            dns.add_perturbation(0.2, 11);
            let e0 = stats::kinetic_energy(dns);
            for _ in 0..10 {
                dns.step();
            }
            (e0, stats::kinetic_energy(dns))
        });
        let drift = (e1 - e0).abs() / e0;
        assert!(drift < 2e-3, "energy drift {drift} (e0={e0}, e1={e1})");
    }

    #[test]
    fn batched_step_matches_scalar_oracle() {
        // the batched panels and the per-mode scalar sweeps must produce
        // the same trajectory to round-off (they differ only in memory
        // layout and division-vs-reciprocal rounding)
        let run = |batched: bool| {
            run_serial(tiny_params().with_batched(batched), |dns| {
                dns.set_laminar(1.0);
                dns.add_perturbation(0.05, 9);
                for _ in 0..3 {
                    dns.step();
                }
                let s = dns.state();
                [
                    s.u().to_vec(),
                    s.v().to_vec(),
                    s.w().to_vec(),
                    s.omega_y().to_vec(),
                    s.phi().to_vec(),
                ]
            })
        };
        let batched = run(true);
        let scalar = run(false);
        for (f, (bf, sf)) in batched.iter().zip(&scalar).enumerate() {
            for (j, (b, s)) in bf.iter().zip(sf).enumerate() {
                assert!(
                    (b - s).norm() < 1e-12 * (1.0 + s.norm()),
                    "field {f} slot {j}: batched {b} vs scalar {s}"
                );
            }
        }
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let run = |pa: usize, pb: usize| -> Vec<f64> {
            let p = tiny_params().with_grid(pa, pb);
            let mut outs = run_parallel(p, |dns| {
                dns.set_laminar(1.0);
                dns.add_perturbation(0.05, 5);
                for _ in 0..2 {
                    dns.step();
                }
                stats::profiles(dns).uu
            });
            outs.pop().unwrap()
        };
        let serial = run(1, 1);
        let par = run(2, 2);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn mass_flux_controller_reaches_and_holds_the_target() {
        let mut p = tiny_params().with_dt(2e-3);
        p.forcing = crate::params::Forcing::ConstantMassFlux { bulk: 1.5 };
        let history = run_serial(p, |dns| {
            let mut hist = Vec::new();
            for _ in 0..60 {
                dns.step();
                hist.push(stats::profiles(dns).bulk_velocity);
            }
            (hist, dns.current_force())
        });
        let (hist, force) = history;
        let last = *hist.last().unwrap();
        assert!((last - 1.5).abs() < 0.01, "bulk = {last}");
        // held, not just crossed: the last 10 samples all near target
        for &b in &hist[hist.len() - 10..] {
            assert!((b - 1.5).abs() < 0.02, "bulk wanders: {b}");
        }
        // the controller found a positive driving force
        assert!(force > 0.0);
    }

    #[test]
    fn turbulent_like_run_stays_finite_and_produces_fluctuations() {
        let prof = run_serial(Params::channel(16, 25, 16, 100.0).with_dt(1e-3), |dns| {
            dns.set_laminar(1.0);
            dns.add_perturbation(0.5, 42);
            for _ in 0..20 {
                dns.step();
            }
            stats::profiles(dns)
        });
        assert!(prof.u_mean.iter().all(|x| x.is_finite()));
        let peak_uu = prof.uu.iter().cloned().fold(0.0, f64::max);
        assert!(peak_uu > 0.0 && peak_uu.is_finite());
        assert!(prof.u_tau > 0.0);
    }
}
