//! Turbulence statistics (the content of the paper's figures 5 and 6) and
//! the law-of-the-wall reference curves they are compared against.
//!
//! Channel flow is statistically stationary and homogeneous in x and z,
//! so one-point statistics are functions of `y` alone and are computed as
//! plane averages directly from the spectral representation:
//! `<a'b'>(y) = sum_k w_k Re(a_k(y) conj(b_k(y)))` with `w_k = 2` for the
//! modes whose conjugate partners are not stored.

use crate::solver::ChannelDns;
use crate::C64;
use dns_bspline::integration_weights;
use dns_telemetry as telemetry;

/// One-point profiles at the collocation points.
#[derive(Clone, Debug)]
pub struct Profiles {
    /// Collocation points in `[-1, 1]`.
    pub y: Vec<f64>,
    /// Mean streamwise velocity `<u>(y)`.
    pub u_mean: Vec<f64>,
    /// Streamwise velocity variance `<u'u'>`.
    pub uu: Vec<f64>,
    /// Wall-normal variance `<v'v'>`.
    pub vv: Vec<f64>,
    /// Spanwise variance `<w'w'>`.
    pub ww: Vec<f64>,
    /// Reynolds shear stress `<u'v'>`.
    pub uv: Vec<f64>,
    /// Friction velocity from the lower-wall mean shear.
    pub u_tau: f64,
    /// Friction Reynolds number `u_tau / nu` (half-height 1).
    pub re_tau: f64,
    /// Bulk (volume-averaged) streamwise velocity.
    pub bulk_velocity: f64,
}

impl Profiles {
    /// `y+` coordinate of each collocation point measured from the lower
    /// wall.
    pub fn y_plus(&self) -> Vec<f64> {
        self.y.iter().map(|&y| (1.0 + y) * self.re_tau).collect()
    }

    /// Mean velocity in wall units.
    pub fn u_plus(&self) -> Vec<f64> {
        self.u_mean
            .iter()
            .map(|&u| u / self.u_tau.max(1e-300))
            .collect()
    }
}

/// Compute instantaneous profiles (collective: all ranks must call).
pub fn profiles(dns: &ChannelDns) -> Profiles {
    let ny = dns.params().ny;
    let ops = dns.ops();
    // local accumulators: u_mean, uu, vv, ww, uv
    let mut acc = vec![0.0f64; 5 * ny];
    let mut vals_u = vec![C64::new(0.0, 0.0); ny];
    let mut vals_v = vec![C64::new(0.0, 0.0); ny];
    let mut vals_w = vec![C64::new(0.0, 0.0); ny];
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) {
            continue;
        }
        let r = dns.line_range(m);
        ops.b0()
            .matvec_complex(&dns.state().u()[r.clone()], &mut vals_u);
        ops.b0()
            .matvec_complex(&dns.state().v()[r.clone()], &mut vals_v);
        ops.b0().matvec_complex(&dns.state().w()[r], &mut vals_w);
        if dns.is_mean(m) {
            for j in 0..ny {
                acc[j] += vals_u[j].re;
            }
            continue;
        }
        let w = dns.mode_weight(m);
        for j in 0..ny {
            acc[ny + j] += w * vals_u[j].norm_sqr();
            acc[2 * ny + j] += w * vals_v[j].norm_sqr();
            acc[3 * ny + j] += w * vals_w[j].norm_sqr();
            acc[4 * ny + j] += w * (vals_u[j] * vals_v[j].conj()).re;
        }
    }
    // reduce across the process grid
    let acc = dns.pfft().comm_a().allreduce(&acc, |a, b| a + b);
    let acc = dns.pfft().comm_b().allreduce(&acc, |a, b| a + b);

    let u_mean = acc[..ny].to_vec();
    let mean_coef = ops.interpolate(&u_mean);
    let dudy_wall = ops.basis().eval_deriv(&mean_coef, -1.0, 1);
    let u_tau = (dns.params().nu * dudy_wall.abs()).sqrt();
    let weights = integration_weights(ops);
    let bulk: f64 = u_mean
        .iter()
        .zip(&weights)
        .map(|(&u, &w)| u * w)
        .sum::<f64>()
        / 2.0;
    Profiles {
        y: ops.points().to_vec(),
        u_mean,
        uu: acc[ny..2 * ny].to_vec(),
        vv: acc[2 * ny..3 * ny].to_vec(),
        ww: acc[3 * ny..4 * ny].to_vec(),
        uv: acc[4 * ny..5 * ny].to_vec(),
        u_tau,
        re_tau: u_tau / dns.params().nu,
        bulk_velocity: bulk,
    }
}

/// Maximum pointwise spectral divergence `|ikx u + dv/dy + ikz w|` over
/// all locally-owned modes and collocation points — the continuity
/// check; the solver's construction keeps this at rounding level.
pub fn max_divergence(dns: &ChannelDns) -> f64 {
    use crate::wallnormal::dy_coefficients;
    let ny = dns.params().ny;
    let ops = dns.ops();
    let mut worst = 0.0f64;
    let mut vals_u = vec![C64::new(0.0, 0.0); ny];
    let mut vals_w = vec![C64::new(0.0, 0.0); ny];
    let mut vals_vy = vec![C64::new(0.0, 0.0); ny];
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) || dns.is_mean(m) {
            continue;
        }
        let (ikx, ikz, _) = dns.mode_wavenumbers(m);
        let r = dns.line_range(m);
        let cvy = dy_coefficients(ops, &dns.state().v()[r.clone()]);
        ops.b0()
            .matvec_complex(&dns.state().u()[r.clone()], &mut vals_u);
        ops.b0()
            .matvec_complex(&dns.state().w()[r.clone()], &mut vals_w);
        ops.b0().matvec_complex(&cvy, &mut vals_vy);
        for j in 0..ny {
            let div = ikx * vals_u[j] + vals_vy[j] + ikz * vals_w[j];
            worst = worst.max(div.norm());
        }
    }
    worst
}

/// Total kinetic energy `(1/2) int (u^2 + v^2 + w^2) dV / (Lx Lz)`
/// (collective).
pub fn kinetic_energy(dns: &ChannelDns) -> f64 {
    let p = profiles(dns);
    let weights = integration_weights(dns.ops());
    let mut e = 0.0;
    for j in 0..p.y.len() {
        e += 0.5 * weights[j] * (p.u_mean[j] * p.u_mean[j] + p.uu[j] + p.vv[j] + p.ww[j]);
    }
    e
}

/// `true` when every locally-owned spectral coefficient of every state
/// field is finite — the cheapest possible "has the run blown up" scan,
/// used by the run-health sentinels before trusting any derived
/// quantity. Local; combine across ranks with an `allreduce_max` on
/// `!finite as f64`.
pub fn local_finite(dns: &ChannelDns) -> bool {
    let s = dns.state();
    [s.u(), s.v(), s.w(), s.omega_y(), s.phi()]
        .into_iter()
        .flatten()
        .all(|c| c.re.is_finite() && c.im.is_finite())
}

/// Running time average of profiles.
///
/// This is the *ephemeral* in-process averager (used by observers that
/// only live for one attempt). Long runs that must survive
/// checkpoint/restore should use [`StatsAccumulator`], which rides in
/// the checkpoint itself and therefore never silently resets when a
/// crashed run is resumed.
#[derive(Default)]
pub struct RunningStats {
    n: usize,
    sum: Option<Profiles>,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one snapshot.
    pub fn add(&mut self, p: &Profiles) {
        self.n += 1;
        match &mut self.sum {
            None => self.sum = Some(p.clone()),
            Some(s) => {
                for (a, b) in s.u_mean.iter_mut().zip(&p.u_mean) {
                    *a += b;
                }
                for (a, b) in s.uu.iter_mut().zip(&p.uu) {
                    *a += b;
                }
                for (a, b) in s.vv.iter_mut().zip(&p.vv) {
                    *a += b;
                }
                for (a, b) in s.ww.iter_mut().zip(&p.ww) {
                    *a += b;
                }
                for (a, b) in s.uv.iter_mut().zip(&p.uv) {
                    *a += b;
                }
                s.u_tau += p.u_tau;
                s.re_tau += p.re_tau;
                s.bulk_velocity += p.bulk_velocity;
            }
        }
    }

    /// Number of accumulated snapshots.
    pub fn count(&self) -> usize {
        self.n
    }

    /// The averaged profiles.
    ///
    /// # Panics
    /// If no snapshots were added.
    pub fn mean(&self) -> Profiles {
        let s = self.sum.as_ref().expect("no snapshots accumulated");
        let inv = 1.0 / self.n as f64;
        let scale = |v: &[f64]| v.iter().map(|x| x * inv).collect::<Vec<_>>();
        Profiles {
            y: s.y.clone(),
            u_mean: scale(&s.u_mean),
            uu: scale(&s.uu),
            vv: scale(&s.vv),
            ww: scale(&s.ww),
            uv: scale(&s.uv),
            u_tau: s.u_tau * inv,
            re_tau: s.re_tau * inv,
            bulk_velocity: s.bulk_velocity * inv,
        }
    }
}

/// Sampling policy for [`StatsAccumulator`].
///
/// ```
/// use dns_core::stats::StatsConfig;
/// let cfg = StatsConfig { every: 5, warmup: 100 };
/// assert!(!cfg.due(100)); // still warming up
/// assert!(cfg.due(105)); // first sample after warmup
/// assert!(!cfg.due(107));
/// assert!(cfg.due(110));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsConfig {
    /// Sample the plane statistics every `every` completed steps.
    pub every: u64,
    /// Steps to discard before the first sample (transient washout).
    pub warmup: u64,
}

impl StatsConfig {
    /// Whether statistics should be sampled after completing `step`.
    pub fn due(&self, step: u64) -> bool {
        let every = self.every.max(1);
        step > self.warmup && (step - self.warmup).is_multiple_of(every)
    }
}

/// One entry of the accumulator's per-sample time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistorySample {
    /// Completed timesteps at the sample.
    pub step: u64,
    /// Simulated time at the sample.
    pub time: f64,
    /// Instantaneous friction velocity.
    pub u_tau: f64,
    /// Instantaneous friction Reynolds number.
    pub re_tau: f64,
    /// Instantaneous bulk velocity.
    pub bulk_velocity: f64,
}

/// Magic tag opening a serialized stats section (see
/// [`StatsAccumulator::encode`]); spells `"DNSSTAT1"` in LE bytes.
pub const STATS_SECTION_MAGIC: u64 = u64::from_le_bytes(*b"DNSSTAT1");

/// Time-and-plane-averaged turbulence statistics (the content of the
/// paper's figures 5-8), accumulated over a run.
///
/// Each [`sample`](Self::sample) is a *collective* call: it computes
/// [`profiles`] (which allreduces the plane sums over both communicator
/// axes), so after every sample the accumulator holds identical bits on
/// every rank — the reduction *is* the rank merge. The accumulator
/// serializes to a byte-exact section ([`encode`](Self::encode) /
/// [`decode`](Self::decode)) that the v2 checkpoint carries, so a
/// crashed-and-resumed run continues averaging exactly where it
/// stopped instead of restarting from zero.
///
/// ```
/// use dns_core::stats::{StatsAccumulator, StatsConfig};
/// use dns_core::{run_serial, Params};
///
/// let params = Params::channel(16, 25, 16, 20.0).with_dt(1e-3);
/// let acc = run_serial(params, |dns| {
///     dns.enable_stats(StatsConfig { every: 1, warmup: 1 });
///     dns.set_laminar(1.0);
///     for _ in 0..3 {
///         dns.step(); // samples itself after warmup
///     }
///     dns.stats().cloned().unwrap()
/// });
/// assert_eq!(acc.count(), 2); // steps 2 and 3
/// let mean = acc.mean().unwrap();
/// assert!((mean.u_tau - 1.0).abs() < 1e-6); // laminar balance
/// // bitwise checkpoint round trip
/// let restored = StatsAccumulator::decode(&acc.encode()).unwrap();
/// assert_eq!(restored.encode(), acc.encode());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StatsAccumulator {
    cfg: StatsConfig,
    n: u64,
    ny: usize,
    y: Vec<f64>,
    /// Flat sums `[u_mean | uu | vv | ww | uv]`, each `ny` long.
    sums: Vec<f64>,
    u_tau_sum: f64,
    re_tau_sum: f64,
    bulk_sum: f64,
    history: Vec<HistorySample>,
}

impl StatsAccumulator {
    /// Empty accumulator with the given sampling policy.
    pub fn new(cfg: StatsConfig) -> Self {
        Self {
            cfg,
            n: 0,
            ny: 0,
            y: Vec::new(),
            sums: Vec::new(),
            u_tau_sum: 0.0,
            re_tau_sum: 0.0,
            bulk_sum: 0.0,
            history: Vec::new(),
        }
    }

    /// The sampling policy.
    pub fn config(&self) -> StatsConfig {
        self.cfg
    }

    /// Whether the accumulator wants a sample after completing `step`.
    pub fn due(&self, step: u64) -> bool {
        self.cfg.due(step)
    }

    /// Number of accumulated samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The per-sample `(step, u_tau, Re_tau, bulk)` time series, in
    /// sampling order across all resume boundaries.
    pub fn history(&self) -> &[HistorySample] {
        &self.history
    }

    /// Take one plane-statistics sample (collective: every rank must
    /// call, and afterwards every rank holds identical accumulator
    /// bits).
    pub fn sample(&mut self, dns: &ChannelDns) {
        let p = profiles(dns);
        self.add_profiles(&p, dns.state().steps, dns.state().time);
        telemetry::count(telemetry::Counter::StatsSamples, 1);
    }

    /// Fold one already-reduced snapshot into the sums (non-collective
    /// core of [`sample`](Self::sample), also used by tests).
    pub fn add_profiles(&mut self, p: &Profiles, step: u64, time: f64) {
        let ny = p.y.len();
        if self.n == 0 {
            self.ny = ny;
            self.y = p.y.clone();
            self.sums = vec![0.0; 5 * ny];
        }
        assert_eq!(self.ny, ny, "stats sample grid changed mid-run");
        self.n += 1;
        for (dst, src) in [&p.u_mean, &p.uu, &p.vv, &p.ww, &p.uv]
            .into_iter()
            .enumerate()
        {
            for j in 0..ny {
                self.sums[dst * ny + j] += src[j];
            }
        }
        self.u_tau_sum += p.u_tau;
        self.re_tau_sum += p.re_tau;
        self.bulk_sum += p.bulk_velocity;
        self.history.push(HistorySample {
            step,
            time,
            u_tau: p.u_tau,
            re_tau: p.re_tau,
            bulk_velocity: p.bulk_velocity,
        });
    }

    /// Merge another accumulator's samples into this one (e.g. windows
    /// gathered by separate runs of the same grid). Histories
    /// concatenate; sums add.
    ///
    /// # Panics
    /// If both accumulators are non-empty on different grids.
    pub fn merge(&mut self, other: &StatsAccumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            self.ny = other.ny;
            self.y = other.y.clone();
            self.sums = vec![0.0; 5 * other.ny];
        }
        assert_eq!(self.ny, other.ny, "cannot merge stats across grids");
        self.n += other.n;
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        self.u_tau_sum += other.u_tau_sum;
        self.re_tau_sum += other.re_tau_sum;
        self.bulk_sum += other.bulk_sum;
        self.history.extend_from_slice(&other.history);
    }

    /// The time-averaged profiles, or `None` before the first sample.
    pub fn mean(&self) -> Option<Profiles> {
        if self.n == 0 {
            return None;
        }
        let ny = self.ny;
        let inv = 1.0 / self.n as f64;
        let scale =
            |r: std::ops::Range<usize>| self.sums[r].iter().map(|x| x * inv).collect::<Vec<_>>();
        Some(Profiles {
            y: self.y.clone(),
            u_mean: scale(0..ny),
            uu: scale(ny..2 * ny),
            vv: scale(2 * ny..3 * ny),
            ww: scale(3 * ny..4 * ny),
            uv: scale(4 * ny..5 * ny),
            u_tau: self.u_tau_sum * inv,
            re_tau: self.re_tau_sum * inv,
            bulk_velocity: self.bulk_sum * inv,
        })
    }

    /// Serialize to the byte-exact stats section carried by the v2
    /// checkpoint: every `f64` as IEEE-754 bits, little-endian, so a
    /// decode/encode round trip reproduces the input byte-for-byte.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (7 + self.y.len() + self.sums.len()));
        let w64 = |v: u64, out: &mut Vec<u8>| out.extend_from_slice(&v.to_le_bytes());
        let wf = |v: f64, out: &mut Vec<u8>| out.extend_from_slice(&v.to_bits().to_le_bytes());
        w64(STATS_SECTION_MAGIC, &mut out);
        w64(self.cfg.every, &mut out);
        w64(self.cfg.warmup, &mut out);
        w64(self.n, &mut out);
        w64(self.ny as u64, &mut out);
        w64(self.history.len() as u64, &mut out);
        for &v in self.y.iter().chain(&self.sums) {
            wf(v, &mut out);
        }
        wf(self.u_tau_sum, &mut out);
        wf(self.re_tau_sum, &mut out);
        wf(self.bulk_sum, &mut out);
        for h in &self.history {
            w64(h.step, &mut out);
            wf(h.time, &mut out);
            wf(h.u_tau, &mut out);
            wf(h.re_tau, &mut out);
            wf(h.bulk_velocity, &mut out);
        }
        out
    }

    /// Decode a section produced by [`encode`](Self::encode); `None` on
    /// any structural mismatch (bad magic, truncation, trailing bytes).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let r64 = |bytes: &[u8], pos: &mut usize| -> Option<u64> {
            let b = bytes.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(u64::from_le_bytes(b.try_into().unwrap()))
        };
        if r64(bytes, &mut pos)? != STATS_SECTION_MAGIC {
            return None;
        }
        let every = r64(bytes, &mut pos)?;
        let warmup = r64(bytes, &mut pos)?;
        let n = r64(bytes, &mut pos)?;
        let ny = usize::try_from(r64(bytes, &mut pos)?).ok()?;
        let hist_len = usize::try_from(r64(bytes, &mut pos)?).ok()?;
        if ny > (1 << 24) || hist_len > (1 << 32) {
            return None;
        }
        let expect = 8 * (6 + 6 * ny + 3 + 5 * hist_len);
        if bytes.len() != expect {
            return None;
        }
        let rf = |bytes: &[u8], pos: &mut usize| -> Option<f64> {
            Some(f64::from_bits(r64(bytes, pos)?))
        };
        let mut y = Vec::with_capacity(ny);
        for _ in 0..ny {
            y.push(rf(bytes, &mut pos)?);
        }
        let mut sums = Vec::with_capacity(5 * ny);
        for _ in 0..5 * ny {
            sums.push(rf(bytes, &mut pos)?);
        }
        let u_tau_sum = rf(bytes, &mut pos)?;
        let re_tau_sum = rf(bytes, &mut pos)?;
        let bulk_sum = rf(bytes, &mut pos)?;
        let mut history = Vec::with_capacity(hist_len);
        for _ in 0..hist_len {
            let step = r64(bytes, &mut pos)?;
            history.push(HistorySample {
                step,
                time: f64::from_bits(r64(bytes, &mut pos)?),
                u_tau: f64::from_bits(r64(bytes, &mut pos)?),
                re_tau: f64::from_bits(r64(bytes, &mut pos)?),
                bulk_velocity: f64::from_bits(r64(bytes, &mut pos)?),
            });
        }
        Some(Self {
            cfg: StatsConfig { every, warmup },
            n,
            ny,
            y,
            sums,
            u_tau_sum,
            re_tau_sum,
            bulk_sum,
            history,
        })
    }
}

/// The Reichardt composite law-of-the-wall profile, the standard
/// reference shape for figure 5's mean velocity:
/// viscous sublayer `u+ = y+`, log region `u+ = ln(y+)/kappa + B`.
///
/// ```
/// use dns_core::stats::reichardt_u_plus;
/// // sublayer: u+ ≈ y+;  log region: u+ ≈ ln(y+)/0.41 + 5.2
/// assert!((reichardt_u_plus(0.5) - 0.5).abs() < 0.05);
/// assert!((reichardt_u_plus(150.0) - (150.0f64.ln() / 0.41 + 5.2)).abs() < 0.6);
/// ```
pub fn reichardt_u_plus(y_plus: f64) -> f64 {
    const KAPPA: f64 = 0.41;
    (1.0 + KAPPA * y_plus).ln() / KAPPA
        + 7.8 * (1.0 - (-y_plus / 11.0).exp() - (y_plus / 11.0) * (-y_plus / 3.0).exp())
}

/// The logarithmic law `u+ = ln(y+)/0.41 + 5.2` (overlap region).
pub fn log_law_u_plus(y_plus: f64) -> f64 {
    y_plus.ln() / 0.41 + 5.2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reichardt_limits() {
        // viscous sublayer: u+ ~ y+
        for yp in [0.1, 0.5, 1.0] {
            let r = reichardt_u_plus(yp);
            assert!((r - yp).abs() < 0.12 * yp.max(0.3), "y+={yp}: {r}");
        }
        // log region: close to the log law
        for yp in [100.0, 300.0] {
            let r = reichardt_u_plus(yp);
            let l = log_law_u_plus(yp);
            assert!((r - l).abs() < 0.6, "y+={yp}: {r} vs {l}");
        }
    }

    #[test]
    fn running_stats_averages() {
        let base = Profiles {
            y: vec![0.0],
            u_mean: vec![1.0],
            uu: vec![2.0],
            vv: vec![0.0],
            ww: vec![0.0],
            uv: vec![-1.0],
            u_tau: 1.0,
            re_tau: 180.0,
            bulk_velocity: 15.0,
        };
        let mut other = base.clone();
        other.u_mean[0] = 3.0;
        other.u_tau = 2.0;
        let mut rs = RunningStats::new();
        rs.add(&base);
        rs.add(&other);
        let m = rs.mean();
        assert_eq!(rs.count(), 2);
        assert!((m.u_mean[0] - 2.0).abs() < 1e-15);
        assert!((m.u_tau - 1.5).abs() < 1e-15);
        assert!((m.uu[0] - 2.0).abs() < 1e-15);
    }

    fn toy_profiles(scale: f64) -> Profiles {
        Profiles {
            y: vec![-1.0, 0.0, 1.0],
            u_mean: vec![0.0, scale, 0.0],
            uu: vec![0.1 * scale; 3],
            vv: vec![0.02 * scale; 3],
            ww: vec![0.03 * scale; 3],
            uv: vec![-0.05 * scale; 3],
            u_tau: scale,
            re_tau: 180.0 * scale,
            bulk_velocity: 0.66 * scale,
        }
    }

    #[test]
    fn accumulator_averages_and_history() {
        let mut acc = StatsAccumulator::new(StatsConfig {
            every: 2,
            warmup: 4,
        });
        assert!(acc.mean().is_none());
        acc.add_profiles(&toy_profiles(1.0), 6, 0.6);
        acc.add_profiles(&toy_profiles(3.0), 8, 0.8);
        assert_eq!(acc.count(), 2);
        let m = acc.mean().unwrap();
        assert!((m.u_mean[1] - 2.0).abs() < 1e-15);
        assert!((m.u_tau - 2.0).abs() < 1e-15);
        assert!((m.uv[0] + 0.1).abs() < 1e-15);
        assert_eq!(acc.history().len(), 2);
        assert_eq!(acc.history()[1].step, 8);
        assert!((acc.history()[1].u_tau - 3.0).abs() < 1e-15);
    }

    #[test]
    fn accumulator_merge_matches_single_pass() {
        let snaps = [1.0, 2.0, 5.0, 7.0];
        let cfg = StatsConfig {
            every: 1,
            warmup: 0,
        };
        let mut whole = StatsAccumulator::new(cfg);
        let mut first = StatsAccumulator::new(cfg);
        let mut second = StatsAccumulator::new(cfg);
        for (i, &s) in snaps.iter().enumerate() {
            whole.add_profiles(&toy_profiles(s), i as u64, i as f64);
            let half = if i < 2 { &mut first } else { &mut second };
            half.add_profiles(&toy_profiles(s), i as u64, i as f64);
        }
        first.merge(&second);
        // summation association differs ((a+b)+(c+d) vs sequential), so
        // the windows agree to rounding, not bitwise
        assert_eq!(first.count(), whole.count());
        let (fm, wm) = (first.mean().unwrap(), whole.mean().unwrap());
        for (a, b) in fm.u_mean.iter().zip(&wm.u_mean) {
            assert!((a - b).abs() < 1e-14);
        }
        assert!((fm.u_tau - wm.u_tau).abs() < 1e-14);
        assert_eq!(first.history(), whole.history());
        // merging into an empty accumulator is an exact clone, bitwise
        let mut empty = StatsAccumulator::new(cfg);
        empty.merge(&whole);
        assert_eq!(empty.encode(), whole.encode());
    }

    #[test]
    fn accumulator_encode_decode_bitwise() {
        let mut acc = StatsAccumulator::new(StatsConfig {
            every: 3,
            warmup: 10,
        });
        acc.add_profiles(&toy_profiles(1.234567890123), 13, 1.3e-2);
        acc.add_profiles(&toy_profiles(0.987654321), 16, 1.6e-2);
        let bytes = acc.encode();
        let back = StatsAccumulator::decode(&bytes).expect("decodes");
        assert_eq!(back, acc);
        assert_eq!(back.encode(), bytes);
        // structural corruption is rejected, not misparsed
        assert!(StatsAccumulator::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(StatsAccumulator::decode(&bad_magic).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(StatsAccumulator::decode(&trailing).is_none());
        // empty accumulator round trips too
        let empty = StatsAccumulator::new(StatsConfig {
            every: 1,
            warmup: 0,
        });
        assert_eq!(
            StatsAccumulator::decode(&empty.encode()).unwrap().encode(),
            empty.encode()
        );
    }

    #[test]
    fn stats_config_due_schedule() {
        let cfg = StatsConfig {
            every: 5,
            warmup: 20,
        };
        assert!(!cfg.due(0));
        assert!(!cfg.due(20));
        assert!(!cfg.due(24));
        assert!(cfg.due(25));
        assert!(!cfg.due(26));
        assert!(cfg.due(30));
        // every = 0 is clamped to 1 rather than dividing by zero
        let dense = StatsConfig {
            every: 0,
            warmup: 0,
        };
        assert!(dense.due(1) && dense.due(2));
    }

    #[test]
    fn laminar_profile_statistics() {
        use crate::params::Params;
        use crate::solver::run_serial;
        // Poiseuille: u = (1-y^2)/(2 nu) * F; u_tau = sqrt(nu * |u'(-1)|)
        // with u'(-1) = 1/nu -> u_tau = 1; bulk = (2/3) u_max.
        let p = Params::channel(16, 25, 16, 20.0);
        let prof = run_serial(p, |dns| {
            dns.set_laminar(1.0);
            profiles(dns)
        });
        assert!((prof.u_tau - 1.0).abs() < 1e-8, "u_tau {}", prof.u_tau);
        assert!((prof.re_tau - 20.0).abs() < 1e-5);
        let u_max = 20.0 / 2.0;
        assert!((prof.bulk_velocity - 2.0 / 3.0 * u_max).abs() < 1e-8);
        assert!(prof.uv.iter().all(|&x| x.abs() < 1e-18));
    }
}
