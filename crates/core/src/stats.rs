//! Turbulence statistics (the content of the paper's figures 5 and 6) and
//! the law-of-the-wall reference curves they are compared against.
//!
//! Channel flow is statistically stationary and homogeneous in x and z,
//! so one-point statistics are functions of `y` alone and are computed as
//! plane averages directly from the spectral representation:
//! `<a'b'>(y) = sum_k w_k Re(a_k(y) conj(b_k(y)))` with `w_k = 2` for the
//! modes whose conjugate partners are not stored.

use crate::solver::ChannelDns;
use crate::C64;
use dns_bspline::integration_weights;

/// One-point profiles at the collocation points.
#[derive(Clone, Debug)]
pub struct Profiles {
    /// Collocation points in `[-1, 1]`.
    pub y: Vec<f64>,
    /// Mean streamwise velocity `<u>(y)`.
    pub u_mean: Vec<f64>,
    /// Streamwise velocity variance `<u'u'>`.
    pub uu: Vec<f64>,
    /// Wall-normal variance `<v'v'>`.
    pub vv: Vec<f64>,
    /// Spanwise variance `<w'w'>`.
    pub ww: Vec<f64>,
    /// Reynolds shear stress `<u'v'>`.
    pub uv: Vec<f64>,
    /// Friction velocity from the lower-wall mean shear.
    pub u_tau: f64,
    /// Friction Reynolds number `u_tau / nu` (half-height 1).
    pub re_tau: f64,
    /// Bulk (volume-averaged) streamwise velocity.
    pub bulk_velocity: f64,
}

impl Profiles {
    /// `y+` coordinate of each collocation point measured from the lower
    /// wall.
    pub fn y_plus(&self) -> Vec<f64> {
        self.y.iter().map(|&y| (1.0 + y) * self.re_tau).collect()
    }

    /// Mean velocity in wall units.
    pub fn u_plus(&self) -> Vec<f64> {
        self.u_mean
            .iter()
            .map(|&u| u / self.u_tau.max(1e-300))
            .collect()
    }
}

/// Compute instantaneous profiles (collective: all ranks must call).
pub fn profiles(dns: &ChannelDns) -> Profiles {
    let ny = dns.params().ny;
    let ops = dns.ops();
    // local accumulators: u_mean, uu, vv, ww, uv
    let mut acc = vec![0.0f64; 5 * ny];
    let mut vals_u = vec![C64::new(0.0, 0.0); ny];
    let mut vals_v = vec![C64::new(0.0, 0.0); ny];
    let mut vals_w = vec![C64::new(0.0, 0.0); ny];
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) {
            continue;
        }
        let r = dns.line_range(m);
        ops.b0()
            .matvec_complex(&dns.state().u()[r.clone()], &mut vals_u);
        ops.b0()
            .matvec_complex(&dns.state().v()[r.clone()], &mut vals_v);
        ops.b0().matvec_complex(&dns.state().w()[r], &mut vals_w);
        if dns.is_mean(m) {
            for j in 0..ny {
                acc[j] += vals_u[j].re;
            }
            continue;
        }
        let w = dns.mode_weight(m);
        for j in 0..ny {
            acc[ny + j] += w * vals_u[j].norm_sqr();
            acc[2 * ny + j] += w * vals_v[j].norm_sqr();
            acc[3 * ny + j] += w * vals_w[j].norm_sqr();
            acc[4 * ny + j] += w * (vals_u[j] * vals_v[j].conj()).re;
        }
    }
    // reduce across the process grid
    let acc = dns.pfft().comm_a().allreduce(&acc, |a, b| a + b);
    let acc = dns.pfft().comm_b().allreduce(&acc, |a, b| a + b);

    let u_mean = acc[..ny].to_vec();
    let mean_coef = ops.interpolate(&u_mean);
    let dudy_wall = ops.basis().eval_deriv(&mean_coef, -1.0, 1);
    let u_tau = (dns.params().nu * dudy_wall.abs()).sqrt();
    let weights = integration_weights(ops);
    let bulk: f64 = u_mean
        .iter()
        .zip(&weights)
        .map(|(&u, &w)| u * w)
        .sum::<f64>()
        / 2.0;
    Profiles {
        y: ops.points().to_vec(),
        u_mean,
        uu: acc[ny..2 * ny].to_vec(),
        vv: acc[2 * ny..3 * ny].to_vec(),
        ww: acc[3 * ny..4 * ny].to_vec(),
        uv: acc[4 * ny..5 * ny].to_vec(),
        u_tau,
        re_tau: u_tau / dns.params().nu,
        bulk_velocity: bulk,
    }
}

/// Maximum pointwise spectral divergence `|ikx u + dv/dy + ikz w|` over
/// all locally-owned modes and collocation points — the continuity
/// check; the solver's construction keeps this at rounding level.
pub fn max_divergence(dns: &ChannelDns) -> f64 {
    use crate::wallnormal::dy_coefficients;
    let ny = dns.params().ny;
    let ops = dns.ops();
    let mut worst = 0.0f64;
    let mut vals_u = vec![C64::new(0.0, 0.0); ny];
    let mut vals_w = vec![C64::new(0.0, 0.0); ny];
    let mut vals_vy = vec![C64::new(0.0, 0.0); ny];
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) || dns.is_mean(m) {
            continue;
        }
        let (ikx, ikz, _) = dns.mode_wavenumbers(m);
        let r = dns.line_range(m);
        let cvy = dy_coefficients(ops, &dns.state().v()[r.clone()]);
        ops.b0()
            .matvec_complex(&dns.state().u()[r.clone()], &mut vals_u);
        ops.b0()
            .matvec_complex(&dns.state().w()[r.clone()], &mut vals_w);
        ops.b0().matvec_complex(&cvy, &mut vals_vy);
        for j in 0..ny {
            let div = ikx * vals_u[j] + vals_vy[j] + ikz * vals_w[j];
            worst = worst.max(div.norm());
        }
    }
    worst
}

/// Total kinetic energy `(1/2) int (u^2 + v^2 + w^2) dV / (Lx Lz)`
/// (collective).
pub fn kinetic_energy(dns: &ChannelDns) -> f64 {
    let p = profiles(dns);
    let weights = integration_weights(dns.ops());
    let mut e = 0.0;
    for j in 0..p.y.len() {
        e += 0.5 * weights[j] * (p.u_mean[j] * p.u_mean[j] + p.uu[j] + p.vv[j] + p.ww[j]);
    }
    e
}

/// `true` when every locally-owned spectral coefficient of every state
/// field is finite — the cheapest possible "has the run blown up" scan,
/// used by the run-health sentinels before trusting any derived
/// quantity. Local; combine across ranks with an `allreduce_max` on
/// `!finite as f64`.
pub fn local_finite(dns: &ChannelDns) -> bool {
    let s = dns.state();
    [s.u(), s.v(), s.w(), s.omega_y(), s.phi()]
        .into_iter()
        .flatten()
        .all(|c| c.re.is_finite() && c.im.is_finite())
}

/// Running time average of profiles.
#[derive(Default)]
pub struct RunningStats {
    n: usize,
    sum: Option<Profiles>,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one snapshot.
    pub fn add(&mut self, p: &Profiles) {
        self.n += 1;
        match &mut self.sum {
            None => self.sum = Some(p.clone()),
            Some(s) => {
                for (a, b) in s.u_mean.iter_mut().zip(&p.u_mean) {
                    *a += b;
                }
                for (a, b) in s.uu.iter_mut().zip(&p.uu) {
                    *a += b;
                }
                for (a, b) in s.vv.iter_mut().zip(&p.vv) {
                    *a += b;
                }
                for (a, b) in s.ww.iter_mut().zip(&p.ww) {
                    *a += b;
                }
                for (a, b) in s.uv.iter_mut().zip(&p.uv) {
                    *a += b;
                }
                s.u_tau += p.u_tau;
                s.re_tau += p.re_tau;
                s.bulk_velocity += p.bulk_velocity;
            }
        }
    }

    /// Number of accumulated snapshots.
    pub fn count(&self) -> usize {
        self.n
    }

    /// The averaged profiles.
    ///
    /// # Panics
    /// If no snapshots were added.
    pub fn mean(&self) -> Profiles {
        let s = self.sum.as_ref().expect("no snapshots accumulated");
        let inv = 1.0 / self.n as f64;
        let scale = |v: &[f64]| v.iter().map(|x| x * inv).collect::<Vec<_>>();
        Profiles {
            y: s.y.clone(),
            u_mean: scale(&s.u_mean),
            uu: scale(&s.uu),
            vv: scale(&s.vv),
            ww: scale(&s.ww),
            uv: scale(&s.uv),
            u_tau: s.u_tau * inv,
            re_tau: s.re_tau * inv,
            bulk_velocity: s.bulk_velocity * inv,
        }
    }
}

/// The Reichardt composite law-of-the-wall profile, the standard
/// reference shape for figure 5's mean velocity:
/// viscous sublayer `u+ = y+`, log region `u+ = ln(y+)/kappa + B`.
pub fn reichardt_u_plus(y_plus: f64) -> f64 {
    const KAPPA: f64 = 0.41;
    (1.0 + KAPPA * y_plus).ln() / KAPPA
        + 7.8 * (1.0 - (-y_plus / 11.0).exp() - (y_plus / 11.0) * (-y_plus / 3.0).exp())
}

/// The logarithmic law `u+ = ln(y+)/0.41 + 5.2` (overlap region).
pub fn log_law_u_plus(y_plus: f64) -> f64 {
    y_plus.ln() / 0.41 + 5.2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reichardt_limits() {
        // viscous sublayer: u+ ~ y+
        for yp in [0.1, 0.5, 1.0] {
            let r = reichardt_u_plus(yp);
            assert!((r - yp).abs() < 0.12 * yp.max(0.3), "y+={yp}: {r}");
        }
        // log region: close to the log law
        for yp in [100.0, 300.0] {
            let r = reichardt_u_plus(yp);
            let l = log_law_u_plus(yp);
            assert!((r - l).abs() < 0.6, "y+={yp}: {r} vs {l}");
        }
    }

    #[test]
    fn running_stats_averages() {
        let base = Profiles {
            y: vec![0.0],
            u_mean: vec![1.0],
            uu: vec![2.0],
            vv: vec![0.0],
            ww: vec![0.0],
            uv: vec![-1.0],
            u_tau: 1.0,
            re_tau: 180.0,
            bulk_velocity: 15.0,
        };
        let mut other = base.clone();
        other.u_mean[0] = 3.0;
        other.u_tau = 2.0;
        let mut rs = RunningStats::new();
        rs.add(&base);
        rs.add(&other);
        let m = rs.mean();
        assert_eq!(rs.count(), 2);
        assert!((m.u_mean[0] - 2.0).abs() < 1e-15);
        assert!((m.u_tau - 1.5).abs() < 1e-15);
        assert!((m.uu[0] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn laminar_profile_statistics() {
        use crate::params::Params;
        use crate::solver::run_serial;
        // Poiseuille: u = (1-y^2)/(2 nu) * F; u_tau = sqrt(nu * |u'(-1)|)
        // with u'(-1) = 1/nu -> u_tau = 1; bulk = (2/3) u_max.
        let p = Params::channel(16, 25, 16, 20.0);
        let prof = run_serial(p, |dns| {
            dns.set_laminar(1.0);
            profiles(dns)
        });
        assert!((prof.u_tau - 1.0).abs() < 1e-8, "u_tau {}", prof.u_tau);
        assert!((prof.re_tau - 20.0).abs() < 1e-5);
        let u_max = 20.0 / 2.0;
        assert!((prof.bulk_velocity - 2.0 / 3.0 * u_max).abs() < 1e-8);
        assert!(prof.uv.iter().all(|&x| x.abs() < 1e-18));
    }
}
