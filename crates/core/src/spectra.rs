//! One-dimensional energy spectra — the signature data products of the
//! channel-DNS reference datasets (del Alamo et al. 2004; Lee & Moser
//! 2015), computed directly from the spectral representation.

use crate::solver::ChannelDns;
use crate::C64;
use dns_bspline::integration_weights;

/// Energy spectra of the three velocity components, integrated over y.
#[derive(Clone, Debug)]
pub struct Spectra {
    /// Streamwise wavenumber indices `0..nx/2`.
    pub kx: Vec<usize>,
    /// `E_uu(kx)`, y-integrated.
    pub euu_kx: Vec<f64>,
    /// `E_vv(kx)`.
    pub evv_kx: Vec<f64>,
    /// `E_ww(kx)`.
    pub eww_kx: Vec<f64>,
    /// Spanwise wavenumber indices `0..nz/2`.
    pub kz: Vec<usize>,
    /// `E_uu(kz)`.
    pub euu_kz: Vec<f64>,
    /// `E_vv(kz)`.
    pub evv_kz: Vec<f64>,
    /// `E_ww(kz)`.
    pub eww_kz: Vec<f64>,
}

/// Compute y-integrated 1D spectra (collective). The mean mode is
/// excluded; the `kx` spectra sum over kz and vice versa; negative kz
/// fold onto their magnitude.
pub fn spectra(dns: &ChannelDns) -> Spectra {
    let ny = dns.params().ny;
    let (sx, hz) = (dns.params().nx / 2, dns.params().nz / 2);
    let weights = integration_weights(dns.ops());
    let ops = dns.ops();
    // accumulators: [component][kx] and [component][|kz|]
    let mut acc = vec![0.0f64; 3 * sx + 3 * hz];
    let mut vals = vec![C64::new(0.0, 0.0); ny];
    let kxlen = dns.pfft().kx_block().len;
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) || dns.is_mean(m) {
            continue;
        }
        let kx_g = dns.pfft().kx_block().global(m % kxlen);
        let kz_g = dns.pfft().kz_block().global(m / kxlen);
        let kz_abs = if kz_g <= hz {
            kz_g
        } else {
            dns.params().nz - kz_g
        };
        let w = dns.mode_weight(m);
        let r = dns.line_range(m);
        for (c, field) in [dns.state().u(), dns.state().v(), dns.state().w()]
            .into_iter()
            .enumerate()
        {
            ops.b0().matvec_complex(&field[r.clone()], &mut vals);
            let e: f64 = vals
                .iter()
                .zip(&weights)
                .map(|(v, &wy)| wy * v.norm_sqr())
                .sum::<f64>()
                * w;
            acc[c * sx + kx_g] += e;
            if kz_abs < hz {
                acc[3 * sx + c * hz + kz_abs] += e;
            }
        }
    }
    let acc = dns.pfft().comm_a().allreduce(&acc, |a, b| a + b);
    let acc = dns.pfft().comm_b().allreduce(&acc, |a, b| a + b);
    Spectra {
        kx: (0..sx).collect(),
        euu_kx: acc[..sx].to_vec(),
        evv_kx: acc[sx..2 * sx].to_vec(),
        eww_kx: acc[2 * sx..3 * sx].to_vec(),
        kz: (0..hz).collect(),
        euu_kz: acc[3 * sx..3 * sx + hz].to_vec(),
        evv_kz: acc[3 * sx + hz..3 * sx + 2 * hz].to_vec(),
        eww_kz: acc[3 * sx + 2 * hz..].to_vec(),
    }
}

/// Spanwise premultiplied spectrum of `u` at one wall-normal collocation
/// index (collective): `E_uu(kz; y)`, folding negative kz onto |kz|. The
/// peak of `kz * E_uu` near the wall sits at the near-wall streak
/// spacing (lambda+ ~ 100), the structure visible in figure 8.
pub fn spanwise_u_spectrum_at(dns: &ChannelDns, y_index: usize) -> Vec<f64> {
    let ny = dns.params().ny;
    assert!(y_index < ny);
    let hz = dns.params().nz / 2;
    let mut acc = vec![0.0f64; hz];
    let mut vals = vec![C64::new(0.0, 0.0); ny];
    let kxlen = dns.pfft().kx_block().len;
    let ops = dns.ops();
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) || dns.is_mean(m) {
            continue;
        }
        let kz_g = dns.pfft().kz_block().global(m / kxlen);
        let kz_abs = if kz_g <= hz {
            kz_g
        } else {
            dns.params().nz - kz_g
        };
        if kz_abs >= hz {
            continue;
        }
        let w = dns.mode_weight(m);
        let r = dns.line_range(m);
        ops.b0().matvec_complex(&dns.state().u()[r], &mut vals);
        acc[kz_abs] += w * vals[y_index].norm_sqr();
    }
    let acc = dns.pfft().comm_a().allreduce(&acc, |a, b| a + b);
    dns.pfft().comm_b().allreduce(&acc, |a, b| a + b)
}

/// Two-dimensional energy spectrum `E_uu(kx, |kz|)` of `u` at one
/// collocation index (collective) — the kx-kz spectral maps that later
/// became the signature figures of the Lee-Moser dataset. Returned
/// row-major as `[kx][|kz|]` with extents `(nx/2, nz/2)`.
pub fn spectrum_2d_at(dns: &ChannelDns, y_index: usize) -> (usize, usize, Vec<f64>) {
    let ny = dns.params().ny;
    assert!(y_index < ny);
    let (sx, hz) = (dns.params().nx / 2, dns.params().nz / 2);
    let mut acc = vec![0.0f64; sx * hz];
    let mut vals = vec![C64::new(0.0, 0.0); ny];
    let kxlen = dns.pfft().kx_block().len;
    let ops = dns.ops();
    for m in 0..dns.local_modes() {
        if dns.is_nyquist(m) || dns.is_mean(m) {
            continue;
        }
        let kx = dns.pfft().kx_block().global(m % kxlen);
        let kz_g = dns.pfft().kz_block().global(m / kxlen);
        let kz_abs = if kz_g <= hz {
            kz_g
        } else {
            dns.params().nz - kz_g
        };
        if kz_abs >= hz || kx >= sx {
            continue;
        }
        let w = dns.mode_weight(m);
        let r = dns.line_range(m);
        ops.b0().matvec_complex(&dns.state().u()[r], &mut vals);
        acc[kx * hz + kz_abs] += w * vals[y_index].norm_sqr();
    }
    let acc = dns.pfft().comm_a().allreduce(&acc, |a, b| a + b);
    let acc = dns.pfft().comm_b().allreduce(&acc, |a, b| a + b);
    (sx, hz, acc)
}

/// Spanwise two-point correlation `R_uu(dz; y)` at one collocation
/// index, from the inverse transform of the spanwise spectrum. The first
/// zero crossing / minimum locates the near-wall streak spacing.
pub fn spanwise_correlation_at(dns: &ChannelDns, y_index: usize) -> Vec<f64> {
    let spec = spanwise_u_spectrum_at(dns, y_index);
    let nz = dns.params().nz;
    // R(dz_m) = sum_k E(k) cos(2 pi k m / nz) (folded spectrum is the
    // cosine-series coefficient set of the even correlation)
    (0..nz / 2)
        .map(|m| {
            spec.iter()
                .enumerate()
                .map(|(k, &e)| e * (std::f64::consts::TAU * (k * m) as f64 / nz as f64).cos())
                .sum()
        })
        .collect()
}

impl Spectra {
    /// Total fluctuation energy recovered from either spectrum direction
    /// (they must agree — a Parseval-style consistency check).
    pub fn total_from_kx(&self) -> f64 {
        self.euu_kx.iter().sum::<f64>()
            + self.evv_kx.iter().sum::<f64>()
            + self.eww_kx.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::solver::run_serial;
    use crate::stats::profiles;

    #[test]
    fn spectra_are_consistent_with_profile_variances() {
        let p = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let (spec, prof, weights) = run_serial(p, |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.4, 13);
            for _ in 0..5 {
                dns.step();
            }
            (
                spectra(dns),
                profiles(dns),
                dns_bspline::integration_weights(dns.ops()),
            )
        });
        // sum of kx spectrum = y-integrated total variance
        let total_prof: f64 = prof
            .uu
            .iter()
            .zip(&prof.vv)
            .zip(&prof.ww)
            .zip(&weights)
            .map(|(((a, b), c), &w)| w * (a + b + c))
            .sum();
        let total_spec = spec.total_from_kx();
        assert!(
            (total_prof - total_spec).abs() < 1e-10 * total_prof.max(1e-30),
            "{total_prof} vs {total_spec}"
        );
        // energy actually lives in the low modes we seeded
        assert!(spec.euu_kx[1] + spec.euu_kx[2] + spec.euu_kx[3] > 0.0);
    }

    #[test]
    fn spanwise_spectrum_at_y_sums_to_local_uu_variance() {
        let p = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let (spec_mid, prof) = run_serial(p, |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.4, 23);
            for _ in 0..3 {
                dns.step();
            }
            let yj = dns.params().ny / 2;
            (spanwise_u_spectrum_at(dns, yj), profiles(dns))
        });
        let total: f64 = spec_mid.iter().sum();
        let want = prof.uu[prof.uu.len() / 2];
        assert!(
            (total - want).abs() < 1e-12 * want.max(1e-30),
            "{total} vs {want}"
        );
    }

    #[test]
    fn spectrum_2d_marginals_match_the_1d_spectra() {
        let p = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let (two_d, one_d, prof) = run_serial(p, |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.4, 37);
            for _ in 0..2 {
                dns.step();
            }
            let yj = dns.params().ny / 2;
            (
                spectrum_2d_at(dns, yj),
                spanwise_u_spectrum_at(dns, yj),
                profiles(dns),
            )
        });
        let (sx, hz, e2) = two_d;
        // summing the 2D map over kx recovers the spanwise spectrum
        for kz in 0..hz {
            let marg: f64 = (0..sx).map(|kx| e2[kx * hz + kz]).sum();
            assert!(
                (marg - one_d[kz]).abs() < 1e-12 * one_d[kz].max(1e-30),
                "kz={kz}: {marg} vs {}",
                one_d[kz]
            );
        }
        // and the full sum is the local variance
        let total: f64 = e2.iter().sum();
        let want = prof.uu[prof.uu.len() / 2];
        assert!((total - want).abs() < 1e-12 * want.max(1e-30));
    }

    #[test]
    fn correlation_at_zero_separation_is_the_variance() {
        let p = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);
        let (corr, prof) = run_serial(p, |dns| {
            dns.set_laminar(0.5);
            dns.add_perturbation(0.4, 77);
            for _ in 0..3 {
                dns.step();
            }
            let yj = dns.params().ny / 3;
            (spanwise_correlation_at(dns, yj), profiles(dns))
        });
        let want = prof.uu[prof.uu.len() / 3];
        assert!(
            (corr[0] - want).abs() < 1e-12 * want.max(1e-30),
            "{} vs {want}",
            corr[0]
        );
        // |R(dz)| <= R(0) for every separation
        for (m, &r) in corr.iter().enumerate() {
            assert!(r.abs() <= corr[0] * (1.0 + 1e-12), "m={m}");
        }
    }

    #[test]
    fn single_mode_lands_in_the_right_bin() {
        let p = Params::channel(16, 25, 16, 80.0);
        let spec = run_serial(p, |dns| {
            dns.add_perturbation(0.2, 3);
            spectra(dns)
        });
        // perturbations were seeded only in |kx|,|kz| <= 3
        for k in 5..spec.kx.len() {
            assert_eq!(spec.euu_kx[k], 0.0, "kx={k}");
        }
        for k in 5..spec.kz.len() {
            assert_eq!(spec.euu_kz[k], 0.0, "kz={k}");
        }
    }
}
