//! Serial fast Fourier transforms for spectral DNS.
//!
//! This crate is the reproduction's stand-in for the serial parts of FFTW
//! 3.3 used by Lee, Malaya & Moser (SC'13): one-dimensional complex and
//! real-half-complex transforms, batched application to many data lines,
//! and the 3/2-rule padding/truncation used for dealiasing the quadratic
//! nonlinear terms of the Navier-Stokes equations.
//!
//! Design notes:
//!
//! * Transforms are driven by immutable [`CfftPlan`] / [`RfftPlan`] objects
//!   (the analogue of FFTW plans). Plans hold precomputed twiddle tables
//!   and are `Send + Sync`, so one plan can be shared by many threads; all
//!   mutable state lives in a caller-provided scratch buffer.
//! * Lengths factorising into 2, 3, 5 (and any prime up to 61 via a direct
//!   small-prime butterfly) use a recursive Stockham autosort algorithm —
//!   no bit-reversal pass. Other lengths fall back to Bluestein's chirp-z
//!   algorithm, so every length is supported.
//! * The real transform packs `n` reals into an `n/2` complex transform
//!   (`n` even), the classic halving trick. Per the paper (section 4.4),
//!   the Nyquist coefficient can be elided: turbulence codes zero it
//!   anyway, and not storing it shrinks every downstream transpose.
//!
//! # Example
//!
//! ```
//! use dns_fft::{C64, CfftPlan, Direction};
//!
//! let n = 96; // a 3/2-dealiased production length: 2^5 * 3
//! let plan = CfftPlan::new(n, Direction::Forward);
//! let mut scratch = plan.make_scratch();
//! // cos(3x) sampled on the grid
//! let mut data: Vec<C64> = (0..n)
//!     .map(|j| C64::new((3.0 * std::f64::consts::TAU * j as f64 / n as f64).cos(), 0.0))
//!     .collect();
//! plan.execute(&mut data, &mut scratch);
//! // energy sits in bins 3 and n-3, each n/2
//! assert!((data[3].re - n as f64 / 2.0).abs() < 1e-9);
//! assert!((data[n - 3].re - n as f64 / 2.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
// Indexed loops mirror the textbook statements of the numerical
// algorithms (banded elimination, butterflies, stencils); iterator
// rewrites of these kernels obscure the maths without helping codegen.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::type_complexity)]

mod bluestein;
pub mod dealias;
pub mod dft;
mod plan;
mod radix;
mod real;

pub use plan::{CfftPlan, Direction, PlanCache};
pub use real::{RealLayout, RfftPlan};

/// Complex double-precision scalar used throughout the DNS stack.
pub type C64 = num_complex::Complex<f64>;

/// Nominal floating-point operation count of a complex FFT of length `n`
/// (the conventional `5 n log2 n` accounting used in HPC flop reporting).
pub fn cfft_flops(n: usize) -> f64 {
    let nf = n as f64;
    5.0 * nf * nf.log2()
}

/// Nominal flop count of a real transform of length `n` (half-length
/// complex transform plus the O(n) split/merge pass).
pub fn rfft_flops(n: usize) -> f64 {
    cfft_flops((n / 2).max(1)) + 6.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_counts_grow_superlinearly() {
        assert!(cfft_flops(1024) > 2.0 * cfft_flops(512));
        assert!(rfft_flops(1024) > 0.0);
    }
}
