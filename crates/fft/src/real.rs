//! Real-to-halfcomplex transforms via the packed half-length complex FFT.
//!
//! The streamwise (x) direction of the DNS transforms real grid data; a
//! length-`n` real transform is computed as a length-`n/2` complex
//! transform of packed even/odd samples plus an O(n) split pass.
//!
//! Two spectrum layouts are supported, reproducing the paper's section
//! 4.4 distinction between P3DFFT and the customized kernel:
//!
//! * [`RealLayout::WithNyquist`]: `n/2 + 1` coefficients (DC..Nyquist),
//!   the conventional FFTW/P3DFFT layout.
//! * [`RealLayout::ElideNyquist`]: `n/2` coefficients. The Nyquist mode is
//!   not representable in the dealiased Fourier basis of the solution, so
//!   it is neither stored nor communicated; the inverse treats it as zero.

use crate::plan::{CfftPlan, Direction};
use crate::C64;

/// Spectrum storage convention for real transforms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RealLayout {
    /// Keep all `n/2 + 1` half-complex coefficients.
    WithNyquist,
    /// Store only `n/2` coefficients, dropping the (zero) Nyquist mode.
    ElideNyquist,
}

/// Plan for a real transform of fixed even length `n`.
///
/// Scaling follows the FFTW convention: `inverse(forward(x)) == n * x`.
pub struct RfftPlan {
    n: usize,
    h: usize,
    layout: RealLayout,
    fwd: CfftPlan,
    inv: CfftPlan,
    /// `w[k] = exp(-2*pi*i*k/n)` for `k in 0..=h/2` plus symmetric use.
    w: Vec<C64>,
}

impl RfftPlan {
    /// Plan a real transform of even length `n >= 2`.
    pub fn new(n: usize, layout: RealLayout) -> Self {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "real transform length must be even, got {n}"
        );
        let h = n / 2;
        let w = (0..=h)
            .map(|k| {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                C64::new(ang.cos(), ang.sin())
            })
            .collect();
        RfftPlan {
            n,
            h,
            layout,
            fwd: CfftPlan::new(h, Direction::Forward),
            inv: CfftPlan::new(h, Direction::Inverse),
            w,
        }
    }

    /// Real (physical-space) line length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty (length >= 2 enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Chosen spectrum layout.
    pub fn layout(&self) -> RealLayout {
        self.layout
    }

    /// Number of complex coefficients produced by [`RfftPlan::forward`].
    pub fn spectrum_len(&self) -> usize {
        match self.layout {
            RealLayout::WithNyquist => self.h + 1,
            RealLayout::ElideNyquist => self.h,
        }
    }

    /// Scratch length required by either direction.
    pub fn scratch_len(&self) -> usize {
        self.h + self.fwd.scratch_len().max(self.inv.scratch_len())
    }

    /// Allocate scratch for this plan.
    pub fn make_scratch(&self) -> Vec<C64> {
        vec![C64::new(0.0, 0.0); self.scratch_len()]
    }

    /// Analysis: real `input` (length n) to half-complex `output`
    /// (length [`RfftPlan::spectrum_len`]).
    pub fn forward(&self, input: &[f64], output: &mut [C64], scratch: &mut [C64]) {
        assert_eq!(input.len(), self.n);
        assert_eq!(output.len(), self.spectrum_len());
        // one flop increment covering the packed half-length complex pass
        // and the O(n) split/merge (the inner complex kernel is the
        // telemetry-free path, so nothing is double-counted per line)
        if dns_telemetry::enabled() {
            dns_telemetry::count_phase(
                dns_telemetry::Phase::Fft,
                dns_telemetry::Counter::Flops,
                crate::rfft_flops(self.n) as u64,
            );
        }
        let h = self.h;
        let (z, inner) = scratch.split_at_mut(h);
        for (j, zj) in z.iter_mut().enumerate() {
            *zj = C64::new(input[2 * j], input[2 * j + 1]);
        }
        self.fwd.execute_inner(z, inner);
        // Split: X[k] = E[k] + w^k * O[k], with
        // E[k] = (Z[k] + conj(Z[h-k]))/2, O[k] = (Z[k] - conj(Z[h-k]))/(2i).
        let nyquist = C64::new(z[0].re - z[0].im, 0.0);
        output[0] = C64::new(z[0].re + z[0].im, 0.0);
        for k in 1..h {
            let zk = z[k];
            let zc = z[h - k].conj();
            let e = 0.5 * (zk + zc);
            let o = 0.5 * (zk - zc);
            // w^k * (o / i) == -i * w^k * o
            let rot = self.w[k] * o;
            output[k] = e + C64::new(rot.im, -rot.re);
        }
        if self.layout == RealLayout::WithNyquist {
            output[h] = nyquist;
        }
    }

    /// Synthesis: half-complex `input` to real `output` (length n),
    /// unnormalised (`inverse(forward(x)) == n * x`). With
    /// [`RealLayout::ElideNyquist`] the missing Nyquist mode is zero.
    pub fn inverse(&self, input: &[C64], output: &mut [f64], scratch: &mut [C64]) {
        assert_eq!(input.len(), self.spectrum_len());
        assert_eq!(output.len(), self.n);
        if dns_telemetry::enabled() {
            dns_telemetry::count_phase(
                dns_telemetry::Phase::Fft,
                dns_telemetry::Counter::Flops,
                crate::rfft_flops(self.n) as u64,
            );
        }
        let h = self.h;
        let (z, inner) = scratch.split_at_mut(h);
        let nyq = match self.layout {
            RealLayout::WithNyquist => input[h].re,
            RealLayout::ElideNyquist => 0.0,
        };
        // Recover the packed spectrum Z[k] = E[k] + i*O[k], using
        // E[k] = (X[k] + conj(X[h-k]))/2 and
        // O[k] = (X[k] - conj(X[h-k]))/2 * conj(w^k)
        // (conjugate symmetry of E and O, and conj(w^(h-k)) = -w^k).
        z[0] = C64::new(0.5 * (input[0].re + nyq), 0.5 * (input[0].re - nyq));
        for k in 1..h {
            let xk = input[k];
            let xc = input[h - k].conj();
            let e = 0.5 * (xk + xc);
            let o = 0.5 * (xk - xc) * self.w[k].conj();
            // Z[k] = E[k] + i*O[k]
            z[k] = e + C64::new(-o.im, o.re);
        }
        self.inv.execute_inner(z, inner);
        // inv gives h * z_packed; desired output is n*x = 2h*x, so double.
        for (j, zj) in z.iter().enumerate() {
            output[2 * j] = 2.0 * zj.re;
            output[2 * j + 1] = 2.0 * zj.im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::rdft;

    fn rand_reals(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn forward_matches_naive_rdft() {
        for n in [2usize, 4, 6, 8, 12, 16, 24, 48, 96, 128] {
            let x = rand_reals(n, n as u64);
            let want = rdft(&x);
            let plan = RfftPlan::new(n, RealLayout::WithNyquist);
            let mut out = vec![C64::new(0.0, 0.0); plan.spectrum_len()];
            let mut scratch = plan.make_scratch();
            plan.forward(&x, &mut out, &mut scratch);
            for (k, (a, b)) in out.iter().zip(&want).enumerate() {
                assert!((a - b).norm() < 1e-9 * n as f64, "n={n} k={k} {a} vs {b}");
            }
        }
    }

    #[test]
    fn roundtrip_scales_by_n() {
        for layout in [RealLayout::WithNyquist, RealLayout::ElideNyquist] {
            let n = 64;
            let mut x = rand_reals(n, 5);
            if layout == RealLayout::ElideNyquist {
                // Remove the Nyquist component so elision is lossless: the
                // Nyquist mode of a real signal is sum_j (-1)^j x_j / n.
                let nyq: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| if j % 2 == 0 { v } else { -v })
                    .sum::<f64>()
                    / n as f64;
                for (j, v) in x.iter_mut().enumerate() {
                    *v -= nyq * if j % 2 == 0 { 1.0 } else { -1.0 };
                }
            }
            let plan = RfftPlan::new(n, layout);
            let mut spec = vec![C64::new(0.0, 0.0); plan.spectrum_len()];
            let mut back = vec![0.0; n];
            let mut scratch = plan.make_scratch();
            plan.forward(&x, &mut spec, &mut scratch);
            plan.inverse(&spec, &mut back, &mut scratch);
            for (a, b) in back.iter().zip(&x) {
                assert!((a / n as f64 - b).abs() < 1e-12, "{layout:?}");
            }
        }
    }

    #[test]
    fn elided_layout_drops_exactly_the_nyquist_mode() {
        let n = 32;
        let x = rand_reals(n, 9);
        let full = RfftPlan::new(n, RealLayout::WithNyquist);
        let elided = RfftPlan::new(n, RealLayout::ElideNyquist);
        let mut sf = vec![C64::new(0.0, 0.0); full.spectrum_len()];
        let mut se = vec![C64::new(0.0, 0.0); elided.spectrum_len()];
        let mut scratch = full.make_scratch();
        full.forward(&x, &mut sf, &mut scratch);
        elided.forward(&x, &mut se, &mut scratch);
        assert_eq!(se.len() + 1, sf.len());
        for (a, b) in se.iter().zip(&sf) {
            assert!((a - b).norm() < 1e-13);
        }
    }

    #[test]
    fn single_mode_synthesis() {
        // inverse of a unit coefficient at k=2 must be 2*cos(2*pi*2*j/n)
        // under the unnormalised convention (coefficient + its conjugate).
        let n = 16;
        let plan = RfftPlan::new(n, RealLayout::WithNyquist);
        let mut spec = vec![C64::new(0.0, 0.0); plan.spectrum_len()];
        spec[2] = C64::new(1.0, 0.0);
        let mut out = vec![0.0; n];
        let mut scratch = plan.make_scratch();
        plan.inverse(&spec, &mut out, &mut scratch);
        for (j, &v) in out.iter().enumerate() {
            let want = 2.0 * (2.0 * std::f64::consts::PI * 2.0 * j as f64 / n as f64).cos();
            assert!((v - want).abs() < 1e-12, "j={j}");
        }
    }
}
