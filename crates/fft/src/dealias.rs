//! 3/2-rule zero padding and truncation for dealiased quadratic products
//! (Orszag 1971), used around every inverse/forward transform pair of the
//! nonlinear-term evaluation (steps (b)/(e) of the paper's section 2.3).
//!
//! Spectra come in two layouts:
//!
//! * **Full complex** (the spanwise z direction): length-`n` spectra in
//!   standard FFT order `k = 0..n/2-1, [nyquist], -n/2+1..-1`. The solution
//!   carries modes `|k| <= n/2 - 1`; the Nyquist slot is structurally zero.
//! * **Half complex** (the streamwise x direction after the real
//!   transform): `k = 0..len-1`, non-negative wavenumbers only.

use crate::C64;

/// Zero-pad a full-complex spectrum of length `n` into a larger spectrum
/// of length `m > n`, preserving wavenumber identity (positive modes stay
/// at the front, negative modes move to the tail). The source Nyquist slot
/// (index `n/2`, meaningless in the dealiased basis) is discarded.
///
/// # Panics
/// If `m < n` or either length is odd.
pub fn pad_full(src: &[C64], dst: &mut [C64]) {
    let n = src.len();
    let m = dst.len();
    assert!(
        m >= n && n.is_multiple_of(2) && m.is_multiple_of(2),
        "bad pad sizes {n} -> {m}"
    );
    let half = n / 2;
    dst[..half].copy_from_slice(&src[..half]);
    for d in dst[half..m - (half - 1)].iter_mut() {
        *d = C64::new(0.0, 0.0);
    }
    if half >= 1 {
        // negative wavenumbers -1..-(half-1): src index n-j -> dst index m-j
        for j in 1..half {
            dst[m - j] = src[n - j];
        }
    }
}

/// Truncate a full-complex spectrum of length `m` down to length `n < m`,
/// keeping modes `|k| <= n/2 - 1` and zeroing the destination Nyquist slot.
pub fn truncate_full(src: &[C64], dst: &mut [C64]) {
    let m = src.len();
    let n = dst.len();
    assert!(
        m >= n && n.is_multiple_of(2) && m.is_multiple_of(2),
        "bad truncate sizes {m} -> {n}"
    );
    let half = n / 2;
    dst[..half].copy_from_slice(&src[..half]);
    dst[half] = C64::new(0.0, 0.0);
    for j in 1..half {
        dst[n - j] = src[m - j];
    }
}

/// Zero-pad a half-complex spectrum (non-negative wavenumbers only) into a
/// longer one: copy the head, zero the tail.
pub fn pad_half(src: &[C64], dst: &mut [C64]) {
    assert!(dst.len() >= src.len());
    dst[..src.len()].copy_from_slice(src);
    for d in dst[src.len()..].iter_mut() {
        *d = C64::new(0.0, 0.0);
    }
}

/// Truncate a half-complex spectrum: keep the lowest `dst.len()` modes.
pub fn truncate_half(src: &[C64], dst: &mut [C64]) {
    assert!(src.len() >= dst.len());
    dst.copy_from_slice(&src[..dst.len()]);
}

/// Number of quadrature points required to dealias quadratic products of
/// `n` Fourier modes by the 3/2 rule.
pub fn dealias_len(n: usize) -> usize {
    3 * n / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CfftPlan, Direction};

    #[test]
    fn dealias_len_is_three_halves() {
        assert_eq!(dealias_len(8), 12);
        assert_eq!(dealias_len(64), 96);
    }

    #[test]
    fn pad_then_truncate_is_identity_without_nyquist() {
        let n = 8;
        let mut src: Vec<C64> = (0..n).map(|i| C64::new(i as f64, -(i as f64))).collect();
        src[n / 2] = C64::new(0.0, 0.0); // dealiased basis carries no Nyquist
        let mut padded = vec![C64::new(9.0, 9.0); dealias_len(n)];
        pad_full(&src, &mut padded);
        let mut back = vec![C64::new(0.0, 0.0); n];
        truncate_full(&padded, &mut back);
        for (a, b) in back.iter().zip(&src) {
            assert!((a - b).norm() < 1e-15);
        }
    }

    #[test]
    fn padding_preserves_the_represented_signal() {
        // A band-limited signal sampled on n points, padded to m points,
        // must interpolate the same trigonometric polynomial: compare
        // physical values at the coincident sample locations.
        let n = 8usize;
        let m = 12usize;
        // signal: 1 + 2cos(x) + sin(2x) represented exactly with |k|<=2
        let f = |x: f64| 1.0 + 2.0 * x.cos() + (2.0 * x).sin();
        let xs_n: Vec<f64> = (0..n)
            .map(|j| 2.0 * std::f64::consts::PI * j as f64 / n as f64)
            .collect();
        let mut grid: Vec<C64> = xs_n.iter().map(|&x| C64::new(f(x), 0.0)).collect();
        let fwd_n = CfftPlan::new(n, Direction::Forward);
        let mut scratch = fwd_n.make_scratch();
        fwd_n.execute(&mut grid, &mut scratch);
        for g in grid.iter_mut() {
            *g /= n as f64; // normalised coefficients
        }
        let mut padded = vec![C64::new(0.0, 0.0); m];
        pad_full(&grid, &mut padded);
        let inv_m = CfftPlan::new(m, Direction::Inverse);
        let mut scratch_m = inv_m.make_scratch();
        inv_m.execute(&mut padded, &mut scratch_m);
        for j in 0..m {
            let x = 2.0 * std::f64::consts::PI * j as f64 / m as f64;
            assert!(
                (padded[j].re - f(x)).abs() < 1e-10 && padded[j].im.abs() < 1e-10,
                "j={j}: {} vs {}",
                padded[j].re,
                f(x)
            );
        }
    }

    #[test]
    fn half_layout_roundtrip() {
        let src: Vec<C64> = (0..5).map(|i| C64::new(i as f64, 1.0)).collect();
        let mut padded = vec![C64::new(7.0, 7.0); 9];
        pad_half(&src, &mut padded);
        assert!(padded[5..].iter().all(|c| c.norm() == 0.0));
        let mut back = vec![C64::new(0.0, 0.0); 5];
        truncate_half(&padded, &mut back);
        assert_eq!(back, src);
    }
}
