//! Bluestein's chirp-z algorithm: O(n log n) DFT for arbitrary n,
//! including large primes, via a circular convolution of power-of-two
//! length. Used as the fallback when `n` has a prime factor larger than
//! the direct-butterfly limit.

use crate::plan::{CfftPlan, Direction};
use crate::C64;

pub(crate) struct Bluestein {
    n: usize,
    /// Convolution length: power of two >= 2n - 1.
    m: usize,
    /// `chirp[t] = exp(sign * pi * i * t^2 / n)`.
    chirp: Vec<C64>,
    /// Forward FFT (length m) of the zero-padded, wrapped conjugate chirp.
    kernel_spectrum: Vec<C64>,
    fwd: CfftPlan,
    inv: CfftPlan,
}

impl Bluestein {
    pub fn new(n: usize, sign: f64) -> Self {
        assert!(n >= 2);
        let m = (2 * n - 1).next_power_of_two();
        // chirp angles computed with t^2 reduced mod 2n to keep the sin/cos
        // arguments small for large n.
        let chirp: Vec<C64> = (0..n)
            .map(|t| {
                let t2 = ((t as u128 * t as u128) % (2 * n as u128)) as f64;
                let ang = sign * std::f64::consts::PI * t2 / n as f64;
                C64::new(ang.cos(), ang.sin())
            })
            .collect();
        // Kernel b[t] = conj(chirp[|t|]) wrapped circularly into length m.
        let mut kernel = vec![C64::new(0.0, 0.0); m];
        kernel[0] = chirp[0].conj();
        for t in 1..n {
            let v = chirp[t].conj();
            kernel[t] = v;
            kernel[m - t] = v;
        }
        // The inner transforms have power-of-two length, so they always use
        // the Stockham path — no recursive Bluestein.
        let fwd = CfftPlan::new(m, Direction::Forward);
        let inv = CfftPlan::new(m, Direction::Inverse);
        let mut scratch = fwd.make_scratch();
        fwd.execute(&mut kernel, &mut scratch);
        Bluestein {
            n,
            m,
            chirp,
            kernel_spectrum: kernel,
            fwd,
            inv,
        }
    }

    /// Scratch: one length-m work array plus the inner plans' scratch.
    pub fn scratch_len(&self) -> usize {
        self.m + self.fwd.scratch_len()
    }

    pub fn execute(&self, data: &mut [C64], scratch: &mut [C64]) {
        let (work, inner) = scratch.split_at_mut(self.m);
        // a_j = x_j * chirp[j], zero padded to m.
        for (j, w) in work.iter_mut().enumerate() {
            *w = if j < self.n {
                data[j] * self.chirp[j]
            } else {
                C64::new(0.0, 0.0)
            };
        }
        self.fwd.execute(work, inner);
        for (w, k) in work.iter_mut().zip(&self.kernel_spectrum) {
            *w *= k;
        }
        self.inv.execute(work, inner);
        let scale = 1.0 / self.m as f64;
        for (k, d) in data.iter_mut().enumerate() {
            *d = work[k] * self.chirp[k] * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    #[test]
    fn bluestein_matches_dft_for_prime_and_composite() {
        for n in [7usize, 11, 13, 31, 37, 61, 67, 113, 211] {
            let x: Vec<C64> = (0..n)
                .map(|i| C64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let want = dft(&x, -1.0);
            let bs = Bluestein::new(n, -1.0);
            let mut got = x.clone();
            let mut scratch = vec![C64::new(0.0, 0.0); bs.scratch_len()];
            bs.execute(&mut got, &mut scratch);
            let err = got
                .iter()
                .zip(&want)
                .map(|(a, b)| (a - b).norm())
                .fold(0.0, f64::max);
            assert!(err < 1e-8 * n as f64, "n={n} err={err}");
        }
    }

    #[test]
    fn bluestein_inverse_direction() {
        let n = 19;
        let x: Vec<C64> = (0..n).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let want = dft(&x, 1.0);
        let bs = Bluestein::new(n, 1.0);
        let mut got = x;
        let mut scratch = vec![C64::new(0.0, 0.0); bs.scratch_len()];
        bs.execute(&mut got, &mut scratch);
        let err = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).norm())
            .fold(0.0, f64::max);
        assert!(err < 1e-8 * n as f64);
    }
}
