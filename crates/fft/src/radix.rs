//! Butterfly kernels for the recursive Stockham mixed-radix FFT.
//!
//! One *stage* performs, for a current transform length `n_cur = r * m`
//! viewed at stride `s` (with `s * n_cur == n_total`):
//!
//! ```text
//! for p in 0..m, q in 0..s:
//!     u_i  = x[q + s*(p + m*i)]                    (i in 0..r)
//!     t_k  = sum_i u_i * omega_r^(k*i)             (radix-r DFT)
//!     y[q + s*(r*p + k)] = t_k * w^(k*p)           (w = omega_{r*m})
//! ```
//!
//! The twiddles `w^(k*p)` are precomputed per stage (`tw[p*r + k]`); the
//! radix-2/3/4/5 butterflies are hand-unrolled, mirroring the paper's
//! observation (section 4.1.1) that hand-unrolled inner loops beat what
//! the compiler produces for these short dependence chains.

use crate::C64;

/// One Stockham stage: radix, sub-transform count, and twiddle table.
#[derive(Clone, Debug)]
pub(crate) struct Stage {
    pub radix: usize,
    /// `m = n_cur / radix` where `n_cur` is the transform length at entry
    /// to this stage.
    pub m: usize,
    /// `tw[p*radix + k] = w^(k*p)`, `w = exp(sign*2*pi*i/(radix*m))`.
    pub tw: Vec<C64>,
    /// Small-DFT matrix powers for the generic butterfly:
    /// `omega[j] = exp(sign*2*pi*i*j/radix)`, `j in 0..radix`.
    pub omega: Vec<C64>,
}

impl Stage {
    pub fn new(radix: usize, m: usize, sign: f64) -> Self {
        let n_cur = radix * m;
        let base = sign * 2.0 * std::f64::consts::PI / n_cur as f64;
        let mut tw = Vec::with_capacity(n_cur);
        for p in 0..m {
            for k in 0..radix {
                let ang = base * ((k * p) % n_cur) as f64;
                tw.push(C64::new(ang.cos(), ang.sin()));
            }
        }
        let wbase = sign * 2.0 * std::f64::consts::PI / radix as f64;
        let omega = (0..radix)
            .map(|j| {
                let ang = wbase * j as f64;
                C64::new(ang.cos(), ang.sin())
            })
            .collect();
        Stage {
            radix,
            m,
            tw,
            omega,
        }
    }

    /// Apply this stage, reading `x` and writing `y` (both of length
    /// `s * radix * m`).
    #[inline]
    pub fn apply(&self, s: usize, x: &[C64], y: &mut [C64]) {
        match self.radix {
            2 => self.apply_r2(s, x, y),
            3 => self.apply_r3(s, x, y),
            4 => self.apply_r4(s, x, y),
            5 => self.apply_r5(s, x, y),
            _ => self.apply_generic(s, x, y),
        }
    }

    #[inline]
    fn apply_r2(&self, s: usize, x: &[C64], y: &mut [C64]) {
        let m = self.m;
        for p in 0..m {
            let w = self.tw[p * 2 + 1];
            let xa = &x[s * p..s * p + s];
            let xb = &x[s * (p + m)..s * (p + m) + s];
            let (ya, yb) = y[s * 2 * p..s * (2 * p + 2)].split_at_mut(s);
            for q in 0..s {
                let a = xa[q];
                let b = xb[q];
                ya[q] = a + b;
                yb[q] = (a - b) * w;
            }
        }
    }

    #[inline]
    fn apply_r3(&self, s: usize, x: &[C64], y: &mut [C64]) {
        let m = self.m;
        // omega[1] = (-1/2, sign*-sqrt(3)/2); write the radix-3 DFT in the
        // standard two-constant form.
        let tau = self.omega[1].im; // sign * -sqrt(3)/2
        for p in 0..m {
            let w1 = self.tw[p * 3 + 1];
            let w2 = self.tw[p * 3 + 2];
            for q in 0..s {
                let a = x[q + s * p];
                let b = x[q + s * (p + m)];
                let c = x[q + s * (p + 2 * m)];
                let bc_s = b + c;
                let bc_d = b - c;
                let t = a - 0.5 * bc_s;
                // i * tau * (b - c)
                let rot = C64::new(-tau * bc_d.im, tau * bc_d.re);
                y[q + s * (3 * p)] = a + bc_s;
                y[q + s * (3 * p + 1)] = (t + rot) * w1;
                y[q + s * (3 * p + 2)] = (t - rot) * w2;
            }
        }
    }

    #[inline]
    fn apply_r4(&self, s: usize, x: &[C64], y: &mut [C64]) {
        let m = self.m;
        // sign = -1 forward: multiply by -i is (im, -re); encode via
        // omega[1] = (0, sign).
        let sgn = self.omega[1].im; // sign * 1.0
        for p in 0..m {
            let w1 = self.tw[p * 4 + 1];
            let w2 = self.tw[p * 4 + 2];
            let w3 = self.tw[p * 4 + 3];
            for q in 0..s {
                let a = x[q + s * p];
                let b = x[q + s * (p + m)];
                let c = x[q + s * (p + 2 * m)];
                let d = x[q + s * (p + 3 * m)];
                let ac_s = a + c;
                let ac_d = a - c;
                let bd_s = b + d;
                let bd_d = b - d;
                // sign*i * (b - d)
                let rot = C64::new(-sgn * bd_d.im, sgn * bd_d.re);
                y[q + s * (4 * p)] = ac_s + bd_s;
                y[q + s * (4 * p + 1)] = (ac_d + rot) * w1;
                y[q + s * (4 * p + 2)] = (ac_s - bd_s) * w2;
                y[q + s * (4 * p + 3)] = (ac_d - rot) * w3;
            }
        }
    }

    #[inline]
    fn apply_r5(&self, s: usize, x: &[C64], y: &mut [C64]) {
        let m = self.m;
        let w5 = &self.omega;
        for p in 0..m {
            let twp = &self.tw[p * 5..p * 5 + 5];
            for q in 0..s {
                let u0 = x[q + s * p];
                let u1 = x[q + s * (p + m)];
                let u2 = x[q + s * (p + 2 * m)];
                let u3 = x[q + s * (p + 3 * m)];
                let u4 = x[q + s * (p + 4 * m)];
                for k in 0..5 {
                    let t = u0
                        + u1 * w5[k % 5]
                        + u2 * w5[(2 * k) % 5]
                        + u3 * w5[(3 * k) % 5]
                        + u4 * w5[(4 * k) % 5];
                    y[q + s * (5 * p + k)] = t * twp[k];
                }
            }
        }
    }

    /// Generic O(r^2) butterfly for odd prime radices up to
    /// [`MAX_DIRECT_PRIME`].
    fn apply_generic(&self, s: usize, x: &[C64], y: &mut [C64]) {
        let r = self.radix;
        let m = self.m;
        let mut u = [C64::new(0.0, 0.0); MAX_DIRECT_PRIME];
        for p in 0..m {
            let twp = &self.tw[p * r..p * r + r];
            for q in 0..s {
                for (i, ui) in u[..r].iter_mut().enumerate() {
                    *ui = x[q + s * (p + i * m)];
                }
                for k in 0..r {
                    let mut t = u[0];
                    for i in 1..r {
                        t += u[i] * self.omega[(k * i) % r];
                    }
                    y[q + s * (r * p + k)] = t * twp[k];
                }
            }
        }
    }
}

/// Largest prime factor handled by the direct butterfly; anything bigger
/// routes the whole transform through Bluestein's algorithm.
pub(crate) const MAX_DIRECT_PRIME: usize = 61;

/// Factorise `n` into the stage radices used by the Stockham driver
/// (4s first for fewer passes, then 2, 3, 5, then odd primes).
/// Returns `None` if a prime factor exceeds [`MAX_DIRECT_PRIME`].
pub(crate) fn factorize(mut n: usize) -> Option<Vec<usize>> {
    let mut f = Vec::new();
    while n.is_multiple_of(4) {
        f.push(4);
        n /= 4;
    }
    for r in [2usize, 3, 5] {
        while n.is_multiple_of(r) {
            f.push(r);
            n /= r;
        }
    }
    let mut p = 7;
    while n > 1 {
        while p * p <= n && !n.is_multiple_of(p) {
            p += 2;
        }
        let fac = if p * p > n { n } else { p };
        if fac > MAX_DIRECT_PRIME {
            return None;
        }
        f.push(fac);
        n /= fac;
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorize_smooth_lengths() {
        assert_eq!(factorize(1), Some(vec![]));
        assert_eq!(factorize(8), Some(vec![4, 2]));
        assert_eq!(factorize(96), Some(vec![4, 4, 2, 3]));
        assert_eq!(factorize(30), Some(vec![2, 3, 5]));
        assert_eq!(factorize(49), Some(vec![7, 7]));
    }

    #[test]
    fn factorize_rejects_large_primes() {
        assert_eq!(factorize(2 * 67), None);
        assert_eq!(factorize(127), None);
    }

    #[test]
    fn factor_product_reconstructs_n() {
        for n in 1..=512usize {
            if let Some(f) = factorize(n) {
                assert_eq!(f.iter().product::<usize>().max(1), n);
            }
        }
    }
}
