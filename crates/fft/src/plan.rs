//! Complex FFT plans: factorisation, twiddle precomputation, execution.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bluestein::Bluestein;
use crate::radix::{factorize, Stage};
use crate::C64;

/// Transform direction. Forward uses the `exp(-2*pi*i*jk/n)` kernel;
/// Inverse uses `exp(+2*pi*i*jk/n)` and is **unnormalised** (a
/// forward+inverse roundtrip scales the data by `n`), matching FFTW's
/// convention, which the DNS absorbs into its quadrature weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Physical space to spectral space (sign = -1).
    Forward,
    /// Spectral space to physical space (sign = +1), unnormalised.
    Inverse,
}

impl Direction {
    pub(crate) fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

enum Algorithm {
    /// Trivial length-0/1 transform.
    Identity,
    /// Recursive Stockham autosort over the given stages.
    Stockham(Vec<Stage>),
    /// Chirp-z fallback for lengths with large prime factors.
    Bluestein(Box<Bluestein>),
}

/// A reusable plan for a one-dimensional complex-to-complex FFT of a fixed
/// length and direction. Immutable after construction (`Send + Sync`).
pub struct CfftPlan {
    n: usize,
    direction: Direction,
    alg: Algorithm,
}

impl CfftPlan {
    /// Plan a transform of length `n`. Any `n` is supported.
    pub fn new(n: usize, direction: Direction) -> Self {
        let alg = if n <= 1 {
            Algorithm::Identity
        } else if let Some(radices) = factorize(n) {
            let mut stages = Vec::with_capacity(radices.len());
            let mut n_cur = n;
            for &r in &radices {
                let m = n_cur / r;
                stages.push(Stage::new(r, m, direction.sign()));
                n_cur = m;
            }
            Algorithm::Stockham(stages)
        } else {
            Algorithm::Bluestein(Box::new(Bluestein::new(n, direction.sign())))
        };
        CfftPlan { n, direction, alg }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Planned direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of scratch elements [`CfftPlan::execute`] requires.
    pub fn scratch_len(&self) -> usize {
        match &self.alg {
            Algorithm::Identity => 0,
            Algorithm::Stockham(_) => self.n,
            Algorithm::Bluestein(b) => b.scratch_len(),
        }
    }

    /// Allocate a correctly-sized scratch buffer for this plan.
    pub fn make_scratch(&self) -> Vec<C64> {
        vec![C64::new(0.0, 0.0); self.scratch_len()]
    }

    /// Execute the transform in place on one line of `n` values.
    ///
    /// # Panics
    /// If `data.len() != n` or `scratch.len() < scratch_len()`.
    pub fn execute(&self, data: &mut [C64], scratch: &mut [C64]) {
        let _line = dns_telemetry::detail_span("cfft_line", dns_telemetry::Phase::Fft);
        if dns_telemetry::enabled() {
            dns_telemetry::count_phase(
                dns_telemetry::Phase::Fft,
                dns_telemetry::Counter::Flops,
                crate::cfft_flops(self.n) as u64,
            );
        }
        self.execute_inner(data, scratch);
    }

    /// The transform kernel with no telemetry at all: the batched entry
    /// points ([`CfftPlan::execute_many`], the pencil-FFT line loops)
    /// account for their whole batch once instead of taxing every line
    /// with a span-open and counter increment.
    pub(crate) fn execute_inner(&self, data: &mut [C64], scratch: &mut [C64]) {
        assert_eq!(data.len(), self.n, "data length mismatch");
        match &self.alg {
            Algorithm::Identity => {}
            Algorithm::Stockham(stages) => {
                let scratch = &mut scratch[..self.n];
                // Ping-pong between `data` and `scratch`; the stage list
                // encodes the recursion fft0(n,s,eo,x,y) -> stage ->
                // fft0(m, r*s, !eo, y, x).
                let mut s = 1usize;
                let mut in_data = true;
                for st in stages {
                    if in_data {
                        st.apply(s, data, scratch);
                    } else {
                        st.apply(s, scratch, data);
                    }
                    in_data = !in_data;
                    s *= st.radix;
                }
                if !in_data {
                    data.copy_from_slice(scratch);
                }
            }
            Algorithm::Bluestein(b) => b.execute(data, scratch),
        }
    }

    /// Execute one line stored with a stride: element `i` of the
    /// transform lives at `data[offset + i * stride]`.
    ///
    /// Gather/scatter through scratch makes this correct for any stride,
    /// but the strided memory traffic is exactly why the production
    /// pipeline *reorders* pencils so transforms always run on
    /// contiguous lines (section 4.2) — see the `fft` bench's
    /// `strided_vs_contiguous` comparison.
    ///
    /// Scratch requirement: `n + scratch_len()`.
    pub fn execute_strided(
        &self,
        data: &mut [C64],
        offset: usize,
        stride: usize,
        scratch: &mut [C64],
    ) {
        assert!(stride >= 1);
        assert!(
            offset + (self.n.max(1) - 1) * stride < data.len() || self.n == 0,
            "strided line exceeds the buffer"
        );
        assert!(scratch.len() >= self.n + self.scratch_len());
        let (line, inner) = scratch.split_at_mut(self.n);
        for (i, l) in line.iter_mut().enumerate() {
            *l = data[offset + i * stride];
        }
        self.execute(line, inner);
        for (i, l) in line.iter().enumerate() {
            data[offset + i * stride] = *l;
        }
    }

    /// Execute over `count` contiguous lines of length `n` stored
    /// back-to-back in `data` (the batched layout produced by the pencil
    /// reorder, where the transform direction is the fastest index).
    ///
    /// Telemetry is recorded once for the whole batch (one span, one flop
    /// increment), not per line — the per-line accounting of
    /// [`CfftPlan::execute`] is measurable overhead at production line
    /// counts even when collection is disabled.
    pub fn execute_many(&self, data: &mut [C64], scratch: &mut [C64]) {
        assert!(
            self.n == 0 || data.len().is_multiple_of(self.n),
            "batched data must be a whole number of lines"
        );
        if self.n == 0 {
            return;
        }
        let _batch = dns_telemetry::detail_span("cfft_batch", dns_telemetry::Phase::Fft);
        if dns_telemetry::enabled() {
            let lines = (data.len() / self.n) as u64;
            dns_telemetry::count_phase(
                dns_telemetry::Phase::Fft,
                dns_telemetry::Counter::Flops,
                lines * crate::cfft_flops(self.n) as u64,
            );
        }
        for line in data.chunks_exact_mut(self.n) {
            self.execute_inner(line, scratch);
        }
    }
}

/// A cache of complex plans keyed by `(n, direction)`, the analogue of
/// FFTW's plan reuse. Cloning the cache shares the underlying plans.
#[derive(Default, Clone)]
pub struct PlanCache {
    plans: Arc<parking_lot_free::Mutex<HashMap<(usize, Direction), Arc<CfftPlan>>>>,
}

/// Minimal internal mutex shim so this crate keeps zero non-numeric
/// dependencies; `std::sync::Mutex` is fine for a create-once cache.
mod parking_lot_free {
    pub use std::sync::Mutex;
}

impl PlanCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch (or create and memoise) the plan for `(n, direction)`.
    pub fn plan(&self, n: usize, direction: Direction) -> Arc<CfftPlan> {
        let mut guard = self.plans.lock().expect("plan cache poisoned");
        guard
            .entry((n, direction))
            .or_insert_with(|| Arc::new(CfftPlan::new(n, direction)))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).norm())
            .fold(0.0, f64::max)
    }

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        // Tiny deterministic LCG; no rand dependency needed in-unit.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                };
                C64::new(next(), next())
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_for_many_lengths() {
        for n in [
            1usize, 2, 3, 4, 5, 6, 8, 9, 12, 15, 16, 20, 24, 27, 30, 32, 45, 48, 49, 60, 64, 96,
            100, 128,
        ] {
            let x = random_signal(n, n as u64);
            let want = dft(&x, -1.0);
            let plan = CfftPlan::new(n, Direction::Forward);
            let mut got = x.clone();
            let mut scratch = plan.make_scratch();
            plan.execute(&mut got, &mut scratch);
            let tol = 1e-9 * (n as f64).max(1.0);
            assert!(
                max_err(&got, &want) < tol,
                "n={n} err={}",
                max_err(&got, &want)
            );
        }
    }

    #[test]
    fn inverse_matches_naive_inverse() {
        for n in [4usize, 6, 10, 36, 50] {
            let x = random_signal(n, 7 + n as u64);
            let want = dft(&x, 1.0);
            let plan = CfftPlan::new(n, Direction::Inverse);
            let mut got = x.clone();
            let mut scratch = plan.make_scratch();
            plan.execute(&mut got, &mut scratch);
            assert!(max_err(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn prime_lengths_use_bluestein_and_agree() {
        for n in [67usize, 97, 101, 257] {
            let x = random_signal(n, n as u64);
            let want = dft(&x, -1.0);
            let plan = CfftPlan::new(n, Direction::Forward);
            assert!(matches!(plan.alg, Algorithm::Bluestein(_)));
            let mut got = x.clone();
            let mut scratch = plan.make_scratch();
            plan.execute(&mut got, &mut scratch);
            assert!(max_err(&got, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn roundtrip_scales_by_n() {
        let n = 96;
        let x = random_signal(n, 3);
        let fwd = CfftPlan::new(n, Direction::Forward);
        let inv = CfftPlan::new(n, Direction::Inverse);
        let mut data = x.clone();
        let mut scratch = fwd.make_scratch();
        fwd.execute(&mut data, &mut scratch);
        inv.execute(&mut data, &mut scratch);
        for (a, b) in data.iter().zip(&x) {
            assert!((a / n as f64 - b).norm() < 1e-12);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 60;
        let x = random_signal(n, 11);
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let plan = CfftPlan::new(n, Direction::Forward);
        let mut spec = x;
        let mut scratch = plan.make_scratch();
        plan.execute(&mut spec, &mut scratch);
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn execute_many_transforms_each_line_independently() {
        let n = 16;
        let lines = 5;
        let plan = CfftPlan::new(n, Direction::Forward);
        let mut scratch = plan.make_scratch();
        let mut batch = Vec::new();
        let mut singles = Vec::new();
        for l in 0..lines {
            let x = random_signal(n, 100 + l as u64);
            let mut y = x.clone();
            plan.execute(&mut y, &mut scratch);
            singles.extend(y);
            batch.extend(x);
        }
        plan.execute_many(&mut batch, &mut scratch);
        assert!(max_err(&batch, &singles) < 1e-12);
    }

    #[test]
    fn strided_execution_matches_contiguous() {
        let n = 24;
        let stride = 5;
        let plan = CfftPlan::new(n, Direction::Forward);
        // a strided matrix of 5 interleaved lines
        let mut data = random_signal(n * stride, 42);
        let reference = data.clone();
        let mut scratch = vec![C64::new(0.0, 0.0); n + plan.scratch_len()];
        for line in 0..stride {
            plan.execute_strided(&mut data, line, stride, &mut scratch);
        }
        // compare against gathering each line by hand
        let mut inner = plan.make_scratch();
        for line in 0..stride {
            let mut gathered: Vec<C64> = (0..n).map(|i| reference[line + i * stride]).collect();
            plan.execute(&mut gathered, &mut inner);
            for (i, want) in gathered.iter().enumerate() {
                assert!((data[line + i * stride] - want).norm() < 1e-13);
            }
        }
    }

    #[test]
    fn plan_cache_reuses_plans() {
        let cache = PlanCache::new();
        let a = cache.plan(64, Direction::Forward);
        let b = cache.plan(64, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.plan(64, Direction::Inverse);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
