//! Naive discrete Fourier transform, used as the correctness reference for
//! every fast algorithm in this crate (and as the O(n^2) comparison point
//! in the microbenchmarks).

use crate::C64;

/// Direct evaluation of the DFT definition:
/// `X[k] = sum_j x[j] * exp(sign * 2*pi*i * j*k / n)`.
///
/// `sign = -1` is the forward (analysis) transform, `sign = +1` the
/// unnormalised inverse. O(n^2); only use for tests and tiny sizes.
pub fn dft(input: &[C64], sign: f64) -> Vec<C64> {
    let n = input.len();
    let mut out = vec![C64::new(0.0, 0.0); n];
    if n == 0 {
        return out;
    }
    let base = sign * 2.0 * std::f64::consts::PI / n as f64;
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = C64::new(0.0, 0.0);
        for (j, &x) in input.iter().enumerate() {
            // Reduce j*k modulo n before forming the angle so that large
            // products do not lose precision.
            let ang = base * ((j * k) % n) as f64;
            acc += x * C64::new(ang.cos(), ang.sin());
        }
        *o = acc;
    }
    out
}

/// Forward DFT of a real sequence, returning the `n/2 + 1` half-complex
/// coefficients (DC .. Nyquist). Reference for [`crate::RfftPlan`].
pub fn rdft(input: &[f64]) -> Vec<C64> {
    let n = input.len();
    let full: Vec<C64> = input.iter().map(|&x| C64::new(x, 0.0)).collect();
    let spec = dft(&full, -1.0);
    spec[..n / 2 + 1].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_delta_is_flat() {
        let mut x = vec![C64::new(0.0, 0.0); 8];
        x[0] = C64::new(1.0, 0.0);
        let y = dft(&x, -1.0);
        for v in y {
            assert!((v - C64::new(1.0, 0.0)).norm() < 1e-12);
        }
    }

    #[test]
    fn dft_roundtrip_recovers_input() {
        let x: Vec<C64> = (0..12)
            .map(|i| C64::new(i as f64, (2 * i) as f64))
            .collect();
        let y = dft(&x, -1.0);
        let z = dft(&y, 1.0);
        for (a, b) in x.iter().zip(z.iter()) {
            assert!((a * 12.0 - b).norm() < 1e-9);
        }
    }

    #[test]
    fn rdft_of_cosine_has_single_peak() {
        let n = 16;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 3.0 * i as f64 / n as f64).cos())
            .collect();
        let s = rdft(&x);
        assert_eq!(s.len(), n / 2 + 1);
        for (k, v) in s.iter().enumerate() {
            let expect = if k == 3 { n as f64 / 2.0 } else { 0.0 };
            assert!(
                (v.re - expect).abs() < 1e-9 && v.im.abs() < 1e-9,
                "k={k} v={v}"
            );
        }
    }
}
