//! Integration tests: the convolution theorem and dealiased products —
//! the serial foundation of the solver's nonlinear-term evaluation.

use dns_fft::dealias::{dealias_len, pad_full, truncate_full};
use dns_fft::{CfftPlan, Direction, C64};

/// Signed wavenumber of FFT-ordered index `i` on an `n` grid.
fn signed(i: usize, n: usize) -> i64 {
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

/// True *linear* convolution of two coefficient spectra over their signed
/// wavenumbers, folded back to FFT ordering with out-of-range products
/// dropped — exactly what a perfectly dealiased quadratic product is.
fn true_convolution(a: &[C64], b: &[C64]) -> Vec<C64> {
    let n = a.len();
    let mut out = vec![C64::new(0.0, 0.0); n];
    #[allow(clippy::needless_range_loop)] // i, j feed `signed()` as wavenumbers
    for i in 0..n {
        for j in 0..n {
            let k = signed(i, n) + signed(j, n);
            // keep only retained solution modes |k| <= n/2 - 1
            if k.unsigned_abs() as usize >= n / 2 {
                continue;
            }
            let idx = ((k + n as i64) % n as i64) as usize;
            out[idx] += a[i] * b[j];
        }
    }
    out
}

fn normalised_forward(grid: &mut [C64]) {
    let n = grid.len();
    let plan = CfftPlan::new(n, Direction::Forward);
    let mut scratch = plan.make_scratch();
    plan.execute(grid, &mut scratch);
    for g in grid.iter_mut() {
        *g /= n as f64;
    }
}

/// Band-limited spectrum with modes only below the dealias cutoff.
fn band_limited_spectrum(n: usize, seed: u64) -> Vec<C64> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut spec = vec![C64::new(0.0, 0.0); n];
    // keep |k| <= n/3 so the quadratic product is fully representable on
    // the 3/2 grid
    let kmax = n / 3;
    spec[0] = C64::new(next(), 0.0);
    for k in 1..=kmax {
        let c = C64::new(next(), next());
        spec[k] = c;
        spec[n - k] = c.conj(); // real signal
    }
    spec
}

#[test]
fn dealiased_pseudo_spectral_product_equals_direct_convolution() {
    let n = 24usize;
    let a = band_limited_spectrum(n, 3);
    let b = band_limited_spectrum(n, 17);

    // reference: the true (alias-free) convolution on the retained modes
    let want = true_convolution(&a, &b);

    // pseudo-spectral with the 3/2 rule: pad, inverse, multiply, forward,
    // truncate
    let m = dealias_len(n);
    let inv = CfftPlan::new(m, Direction::Inverse);
    let mut scratch = inv.make_scratch();
    let mut ga = vec![C64::new(0.0, 0.0); m];
    let mut gb = vec![C64::new(0.0, 0.0); m];
    pad_full(&a, &mut ga);
    pad_full(&b, &mut gb);
    inv.execute(&mut ga, &mut scratch);
    inv.execute(&mut gb, &mut scratch);
    let mut prod: Vec<C64> = ga.iter().zip(&gb).map(|(x, y)| x * y).collect();
    normalised_forward(&mut prod);
    let mut got = vec![C64::new(0.0, 0.0); n];
    truncate_full(&prod, &mut got);

    for k in 0..n {
        if k == n / 2 {
            continue; // Nyquist slot is structurally zero after truncation
        }
        assert!(
            (got[k] - want[k]).norm() < 1e-12,
            "k={k}: {} vs {}",
            got[k],
            want[k]
        );
    }
}

#[test]
fn undealiased_product_aliases_but_dealiased_does_not() {
    // with modes near the grid Nyquist, the product on the *unpadded*
    // grid aliases into low wavenumbers; the 3/2 rule removes the error
    let n = 16usize;
    let mut a = vec![C64::new(0.0, 0.0); n];
    // a = cos(7x): modes +-7; product a*a has modes 0 and +-14, and 14
    // aliases onto -2 on the unpadded grid
    a[7] = C64::new(0.5, 0.0);
    a[n - 7] = C64::new(0.5, 0.0);

    // unpadded product
    let inv = CfftPlan::new(n, Direction::Inverse);
    let mut scratch = inv.make_scratch();
    let mut g = a.clone();
    inv.execute(&mut g, &mut scratch);
    let mut prod: Vec<C64> = g.iter().map(|x| x * x).collect();
    normalised_forward(&mut prod);
    let aliased = prod[2].norm() + prod[n - 2].norm();
    assert!(aliased > 0.1, "premise: aliasing occurs, got {aliased}");

    // dealiased product
    let m = dealias_len(n);
    let invm = CfftPlan::new(m, Direction::Inverse);
    let mut scratchm = invm.make_scratch();
    let mut gm = vec![C64::new(0.0, 0.0); m];
    pad_full(&a, &mut gm);
    invm.execute(&mut gm, &mut scratchm);
    let mut prodm: Vec<C64> = gm.iter().map(|x| x * x).collect();
    normalised_forward(&mut prodm);
    let mut clean = vec![C64::new(0.0, 0.0); n];
    truncate_full(&prodm, &mut clean);
    let res = clean[2].norm() + clean[n - 2].norm();
    assert!(res < 1e-13, "dealiased residue {res}");
    // and the mean is exact: cos^2 has mean 1/2; the cos(14x) part lies
    // beyond the retained band and is correctly discarded, not aliased
    assert!((clean[0].re - 0.5).abs() < 1e-13);
}

#[test]
fn convolution_theorem_holds_for_full_spectra() {
    // without padding, the grid product equals the *circular* convolution
    let n = 20usize;
    let a = band_limited_spectrum(n, 5);
    let b = band_limited_spectrum(n, 9);
    let mut want = vec![C64::new(0.0, 0.0); n];
    for k in 0..n {
        let mut acc = C64::new(0.0, 0.0);
        for m in 0..n {
            acc += a[m] * b[(n + k - m) % n];
        }
        want[k] = acc;
    }
    let inv = CfftPlan::new(n, Direction::Inverse);
    let mut scratch = inv.make_scratch();
    let mut ga = a.clone();
    let mut gb = b.clone();
    inv.execute(&mut ga, &mut scratch);
    inv.execute(&mut gb, &mut scratch);
    let mut prod: Vec<C64> = ga.iter().zip(&gb).map(|(x, y)| x * y).collect();
    normalised_forward(&mut prod);
    for k in 0..n {
        assert!((prod[k] - want[k]).norm() < 1e-12, "k={k}");
    }
}
