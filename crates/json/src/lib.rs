//! # dns-json — the shared hand-rolled JSON layer
//!
//! The workspace vendors no serde; every line protocol in the stack
//! (health flight-recorder replay, the campaign server's request/response
//! wire format, run-spec files, the queue journal) hand-rolls its JSON.
//! This crate is the one shared implementation: a dynamic [`Json`] value,
//! a recursive-descent [`parse`]r (promoted verbatim from `dns-health`,
//! which re-exports it for compatibility), and the matching deterministic
//! serializer [`Json::dump`] the reader did not previously have.
//!
//! Determinism matters more than speed here: object keys live in a
//! [`BTreeMap`], so a value always serializes to the same bytes — which
//! is what lets the queue journal CRC a record's canonical serialization
//! and verify it byte-for-byte on replay. Numbers are `f64` (every value
//! the protocols emit fits in the 2^53 exact-integer range; 64-bit
//! digests travel as hex strings instead).

#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers are exact up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps serialization canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Field lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Exact non-negative integer value, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build a number from anything convertible to `f64` without loss
    /// concerns at the call site (`u32`, small `u64`s, `f64`, ...).
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Start an object builder.
    pub fn obj() -> ObjBuilder {
        ObjBuilder(BTreeMap::new())
    }

    /// Serialize to the canonical compact form: object keys in sorted
    /// (`BTreeMap`) order, no whitespace, integers (in the exact `f64`
    /// range) without a fractional part, other numbers in Rust's
    /// shortest round-trip form. Non-finite numbers, which JSON cannot
    /// represent, serialize as `null`.
    ///
    /// ```
    /// use dns_json::Json;
    /// let v = Json::obj().put("b", Json::num(2)).put("a", Json::str("x")).build();
    /// assert_eq!(v.dump(), r#"{"a":"x","b":2}"#);
    /// assert_eq!(dns_json::parse(&v.dump()).unwrap(), v);
    /// ```
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => out.push_str(&fmt_f64(*n)),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Incremental object construction for the writer side.
///
/// ```
/// use dns_json::Json;
/// let v = Json::obj().put("ok", Json::Bool(true)).build();
/// assert_eq!(v.dump(), r#"{"ok":true}"#);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ObjBuilder(BTreeMap<String, Json>);

impl ObjBuilder {
    /// Insert a field (replacing any previous value under the key).
    pub fn put(mut self, key: impl Into<String>, value: Json) -> ObjBuilder {
        self.0.insert(key.into(), value);
        self
    }

    /// Insert a field only when `value` is `Some`.
    pub fn put_opt(self, key: impl Into<String>, value: Option<Json>) -> ObjBuilder {
        match value {
            Some(v) => self.put(key, v),
            None => self,
        }
    }

    /// Finish into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

/// Render an `f64` the way the serializer does: exact integers in the
/// `±2^53` range without a fractional part, everything else in Rust's
/// shortest round-trip decimal form, non-finite values as `null`.
pub fn fmt_f64(n: f64) -> String {
    if !n.is_finite() {
        return "null".into();
    }
    if n == 0.0 && n.is_sign_negative() {
        // the integer fast path below would drop the sign bit
        return "-0.0".into();
    }
    if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// JSON string escaping (the same rules every writer in the workspace
/// uses: the two mandatory escapes plus readable control-character forms,
/// `\u` for the rest of C0).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn eat_word(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_word("true", Json::Bool(true)),
            Some(b'f') => self.eat_word("false", Json::Bool(false)),
            Some(b'n') => self.eat_word("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the
                            // protocols' ASCII-escaped output; reject
                            // rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape outside the BMP"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"k": [1, 2, {"x": "y"}], "n": null}"#).unwrap();
        assert_eq!(v.get("n"), Some(&Json::Null));
        match v.get("k") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0].as_u64(), Some(1));
                assert_eq!(items[2].get("x").and_then(Json::as_str), Some("y"));
            }
            other => panic!("bad array: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "12 34",
            "tru",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_escapes() {
        let v = parse(r#""quote \" slash \\ tab \t unicode A""#).unwrap();
        assert_eq!(v.as_str(), Some("quote \" slash \\ tab \t unicode A"));
    }

    #[test]
    fn integers_are_exact() {
        let v = parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(9007199254740992));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn dump_is_canonical_and_roundtrips() {
        let v = Json::obj()
            .put("z", Json::num(3))
            .put("a", Json::Arr(vec![Json::Null, Json::Bool(false)]))
            .put("s", Json::str("tab\there"))
            .put("f", Json::Num(0.125))
            .build();
        let text = v.dump();
        // keys in sorted order, integers without fraction
        assert_eq!(
            text,
            r#"{"a":[null,false],"f":0.125,"s":"tab\there","z":3}"#
        );
        assert_eq!(parse(&text).unwrap(), v);
        // canonical: dump(parse(dump(x))) == dump(x)
        assert_eq!(parse(&text).unwrap().dump(), text);
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -17.0,
            0.1,
            1e-9,
            2.5e17,
            9_007_199_254_740_992.0,
            -9_007_199_254_740_992.0,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
        ] {
            let text = fmt_f64(x);
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn builder_put_opt_and_helpers() {
        let v = Json::obj()
            .put_opt("present", Some(Json::num(1)))
            .put_opt("absent", None)
            .build();
        assert_eq!(v.dump(), r#"{"present":1}"#);
        assert_eq!(v.get("absent"), None);
        assert_eq!(Json::str("x").as_str(), Some("x"));
        assert_eq!(Json::num(4u32).as_u64(), Some(4));
    }

    #[test]
    fn escape_matches_writer() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
