//! # channel-dns
//!
//! A Rust reproduction of *"Petascale Direct Numerical Simulation of
//! Turbulent Channel Flow on up to 786K Cores"* (Lee, Malaya & Moser,
//! SC'13): a complete spectral channel-flow DNS plus every substrate the
//! paper's code relied on, and the benchmark harness regenerating every
//! table and figure of its evaluation.
//!
//! This umbrella crate re-exports the whole stack under short names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`fft`] | `dns-fft` | serial mixed-radix/Bluestein FFTs, real transforms, 3/2 dealiasing |
//! | [`banded`] | `dns-banded` | banded LU; the paper's corner-folded custom solver (Table 1) |
//! | [`bspline`] | `dns-bspline` | B-spline bases, Greville collocation, Galerkin operators |
//! | [`minimpi`] | `dns-minimpi` | thread-backed MPI semantics (communicators, collectives, Cartesian grids) |
//! | [`pencil`] | `dns-pencil` | block decompositions, reorder kernels, distributed transposes |
//! | [`pfft`] | `dns-pfft` | the parallel pencil FFT (customized kernel + P3DFFT-like baseline) |
//! | [`netmodel`] | `dns-netmodel` | calibrated performance models of Mira/Lonestar/Stampede/Blue Waters |
//! | [`core_solver`] | `dns-core` | the DNS: KMM formulation, RK3-IMEX, statistics, spectra, checkpoints |
//!
//! See the repository `README.md` for a tour, `DESIGN.md` for the
//! reproduction methodology (what is real, what is modelled and why),
//! and `EXPERIMENTS.md` for paper-vs-reproduction results.
//!
//! ## Quick taste
//!
//! ```
//! use channel_dns::core_solver::{run_serial, Params};
//! use channel_dns::core_solver::stats::profiles;
//!
//! let params = Params::channel(16, 25, 16, 50.0).with_dt(1e-3);
//! let p = run_serial(params, |dns| {
//!     dns.set_laminar(1.0);
//!     dns.step();
//!     profiles(dns)
//! });
//! assert!((p.u_tau - 1.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub use dns_banded as banded;
pub use dns_bspline as bspline;
pub use dns_core as core_solver;
pub use dns_fft as fft;
pub use dns_minimpi as minimpi;
pub use dns_netmodel as netmodel;
pub use dns_pencil as pencil;
pub use dns_pfft as pfft;
