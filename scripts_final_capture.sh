#!/bin/bash
# Final deliverable capture (run after the figure chain completes)
set -x
cd /root/repo
cargo test --workspace --release 2>&1 | tee /root/repo/test_output.txt | tail -5
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | tail -5
