//! Contract tests: the panics and errors the public APIs promise in
//! their documentation actually fire, with recognisable messages.

use channel_dns::banded::{BandedMatrix, CornerBanded};
use channel_dns::core_solver::Params;
use channel_dns::fft::dealias::pad_full;
use channel_dns::fft::{RealLayout, RfftPlan, C64};
use channel_dns::minimpi;
use channel_dns::pencil::{ExchangeStrategy, TransposePlan};
use channel_dns::pfft::{ParallelFft, PfftConfig};

fn panics<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> String {
    let err = std::panic::catch_unwind(f).expect_err("closure must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn params_validation_contracts() {
    let msg = panics(|| Params::channel(30, 33, 32, 100.0).validate());
    assert!(msg.contains("multiples of 4"), "{msg}");
    let msg = panics(|| Params::channel(16, 8, 16, 100.0).validate());
    assert!(msg.contains("ny too small"), "{msg}");
}

#[test]
fn real_fft_rejects_odd_lengths() {
    let msg = panics(|| {
        RfftPlan::new(31, RealLayout::WithNyquist);
    });
    assert!(msg.contains("must be even"), "{msg}");
}

#[test]
fn dealias_rejects_shrinking_pads() {
    let msg = panics(|| {
        let src = vec![C64::new(0.0, 0.0); 16];
        let mut dst = vec![C64::new(0.0, 0.0); 8];
        pad_full(&src, &mut dst);
    });
    assert!(msg.contains("bad pad sizes"), "{msg}");
}

#[test]
fn banded_storage_rejects_out_of_band_writes() {
    let msg = panics(|| {
        let mut m = BandedMatrix::<f64>::zeros(8, 1, 1);
        m.set(0, 5, 1.0);
    });
    assert!(msg.contains("outside band"), "{msg}");
}

#[test]
fn corner_storage_enforces_its_geometry() {
    let msg = panics(|| {
        CornerBanded::zeros(3, 2, 2, 0, 0); // n < bandwidth
    });
    assert!(msg.contains("at least as large as the bandwidth"), "{msg}");
    let msg = panics(|| {
        CornerBanded::zeros(16, 1, 1, 2, 0); // too many corner rows
    });
    assert!(msg.contains("top corner rows limited"), "{msg}");
}

#[test]
fn transpose_plans_need_enough_work_per_rank() {
    let results = minimpi::run(4, |world| {
        let msg = panics(std::panic::AssertUnwindSafe(|| {
            // nf = 2 < 4 ranks: impossible decomposition
            TransposePlan::new(&world, 1, 2, 8, ExchangeStrategy::AllToAll);
        }));
        msg.contains("at least the communicator size")
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn parallel_fft_requires_a_matching_world() {
    let results = minimpi::run(2, |world| {
        let msg = panics(std::panic::AssertUnwindSafe(move || {
            // 2 ranks but a 2 x 2 grid requested
            ParallelFft::new(world, PfftConfig::customized(16, 4, 8, 2, 2));
        }));
        msg.contains("world size != pa*pb")
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn dealiased_grids_must_stay_even() {
    let results = minimpi::run(1, |world| {
        let msg = panics(std::panic::AssertUnwindSafe(move || {
            // nx = 18: 3*18/2 = 27 is odd — rejected up front
            ParallelFft::new(world, PfftConfig::customized(18, 4, 8, 1, 1).with_dealias());
        }));
        msg.contains("padded sizes even")
    });
    assert!(results.into_iter().all(|ok| ok));
}
