//! Thread-safety contracts: plans and factorisations are immutable after
//! construction and shared across worker threads (the paper's threading
//! model: one plan, many OpenMP threads).

use channel_dns::banded::testmat::CollocationLike;
use channel_dns::banded::CornerLu;
use channel_dns::fft::{CfftPlan, Direction, PlanCache, C64};
use std::sync::Arc;

#[test]
fn one_fft_plan_serves_many_threads() {
    let plan = Arc::new(CfftPlan::new(96, Direction::Forward));
    let data: Arc<Vec<C64>> = Arc::new(
        (0..96)
            .map(|i| C64::new((i as f64).sin(), (i as f64).cos()))
            .collect(),
    );
    // reference result
    let mut want = data.as_ref().clone();
    let mut scratch = plan.make_scratch();
    plan.execute(&mut want, &mut scratch);

    let mut handles = Vec::new();
    for _ in 0..8 {
        let plan = Arc::clone(&plan);
        let data = Arc::clone(&data);
        let want = want.clone();
        handles.push(std::thread::spawn(move || {
            let mut scratch = plan.make_scratch();
            for _ in 0..50 {
                let mut x = data.as_ref().clone();
                plan.execute(&mut x, &mut scratch);
                for (a, b) in x.iter().zip(&want) {
                    assert!((a - b).norm() < 1e-14);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
}

#[test]
fn plan_cache_is_safe_under_concurrent_mixed_sizes() {
    let cache = Arc::new(PlanCache::new());
    let mut handles = Vec::new();
    for t in 0..6usize {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for i in 0..40usize {
                let n = 8 + 4 * ((t + i) % 13);
                let plan = cache.plan(n, Direction::Forward);
                assert_eq!(plan.len(), n);
                let mut x = vec![C64::new(1.0, 0.0); n];
                let mut scratch = plan.make_scratch();
                plan.execute(&mut x, &mut scratch);
                // DC bin collects the sum
                assert!((x[0].re - n as f64).abs() < 1e-9);
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
}

#[test]
fn one_banded_factorisation_serves_many_threads() {
    let cfg = CollocationLike::table1(15);
    let rhs = cfg.rhs();
    let lu = Arc::new(CornerLu::factor(cfg.corner()).unwrap());
    // reference
    let mut want = rhs.clone();
    lu.solve_complex(&mut want);

    let mut handles = Vec::new();
    for _ in 0..8 {
        let lu = Arc::clone(&lu);
        let rhs = rhs.clone();
        let want = want.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                let mut x = rhs.clone();
                lu.solve_complex(&mut x);
                for (a, b) in x.iter().zip(&want) {
                    assert!((a - b).norm() < 1e-15);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
}
