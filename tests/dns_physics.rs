//! Physics-level integration tests of the full DNS: global budgets and
//! invariants that combine every part of the stack, run on multiple
//! rank layouts.

use channel_dns::core_solver::stats::{kinetic_energy, profiles};
use channel_dns::core_solver::{run_parallel, run_serial, Params};

/// Global streamwise momentum: d/dt int <u> dy = 2 F - (tau_lower +
/// tau_upper). Checked in a transitional state, where every term is
/// active.
#[test]
fn mean_momentum_budget_closes() {
    let p = Params::channel(16, 33, 16, 60.0).with_dt(5e-4);
    let (dm_dt, rhs) = run_serial(p, |dns| {
        dns.set_laminar(0.5);
        dns.add_perturbation(0.4, 9);
        for _ in 0..10 {
            dns.step();
        }
        // momentum integral before
        let weights = channel_dns::bspline::integration_weights(dns.ops());
        let momentum = |dns: &channel_dns::core_solver::ChannelDns| {
            let pr = profiles(dns);
            pr.u_mean
                .iter()
                .zip(&weights)
                .map(|(&u, &w)| u * w)
                .sum::<f64>()
        };
        let wall_stress = |dns: &channel_dns::core_solver::ChannelDns| {
            let pr = profiles(dns);
            let coef = dns.ops().interpolate(&pr.u_mean);
            let nu = dns.params().nu;
            // drag at both walls
            nu * (dns.ops().basis().eval_deriv(&coef, -1.0, 1)
                - dns.ops().basis().eval_deriv(&coef, 1.0, 1))
        };
        let m0 = momentum(dns);
        let s0 = wall_stress(dns);
        let n_sub = 8;
        for _ in 0..n_sub {
            dns.step();
        }
        let m1 = momentum(dns);
        let s1 = wall_stress(dns);
        let dt_tot = n_sub as f64 * dns.params().dt;
        let dm_dt = (m1 - m0) / dt_tot;
        // RHS evaluated at the midpoint of the interval
        let rhs = 2.0 * 1.0 - 0.5 * (s0 + s1);
        (dm_dt, rhs)
    });
    assert!(
        (dm_dt - rhs).abs() < 0.02 * rhs.abs().max(0.1),
        "momentum budget: d/dt = {dm_dt}, 2F - drag = {rhs}"
    );
}

/// The solver must give bit-identical physics regardless of the process
/// grid (1x1, 4x1, 1x4, 2x2) — decomposition invariance.
#[test]
fn physics_is_independent_of_the_process_grid() {
    let run = |pa: usize, pb: usize| -> (Vec<f64>, f64) {
        let p = Params::channel(16, 25, 16, 80.0)
            .with_dt(1e-3)
            .with_grid(pa, pb);
        let mut out = run_parallel(p, |dns| {
            dns.set_laminar(0.6);
            dns.add_perturbation(0.3, 31);
            for _ in 0..4 {
                dns.step();
            }
            (profiles(dns).u_mean, kinetic_energy(dns))
        });
        out.pop().unwrap()
    };
    let (ref_profile, ref_e) = run(1, 1);
    for (pa, pb) in [(4, 1), (1, 4), (2, 2)] {
        let (prof, e) = run(pa, pb);
        assert!(
            (e - ref_e).abs() < 1e-10 * ref_e,
            "energy mismatch on {pa}x{pb}: {e} vs {ref_e}"
        );
        for (a, b) in prof.iter().zip(&ref_profile) {
            assert!((a - b).abs() < 1e-9, "{pa}x{pb}: {a} vs {b}");
        }
    }
}

/// Transient growth: infinitesimal perturbations on a strong mean shear
/// must extract energy (the lift-up mechanism) — the physical process
/// behind transition in the channel.
#[test]
fn perturbations_grow_on_a_sheared_base_flow() {
    let p = Params::channel(16, 33, 16, 120.0).with_dt(5e-4);
    let (e0, e1) = run_serial(p, |dns| {
        dns.set_laminar(0.4);
        dns.add_perturbation(0.05, 5);
        let fluct = |dns: &channel_dns::core_solver::ChannelDns| {
            let pr = profiles(dns);
            pr.uu
                .iter()
                .zip(&pr.vv)
                .zip(&pr.ww)
                .map(|((a, b), c)| a + b + c)
                .fold(0.0f64, f64::max)
        };
        let e0 = fluct(dns);
        for _ in 0..300 {
            dns.step();
        }
        (e0, fluct(dns))
    });
    assert!(e1 > 1.5 * e0, "no transient growth: {e0} -> {e1}");
}

/// With the nonlinear terms disabled and no forcing, every mode decays
/// monotonically (the discrete operator is dissipative).
#[test]
fn linear_operator_is_dissipative() {
    let mut p = Params::channel(16, 33, 16, 200.0).with_dt(1e-3);
    p.forcing = channel_dns::core_solver::Forcing::None;
    p.nonlinear = false;
    let energies = run_serial(p, |dns| {
        dns.add_perturbation(0.3, 77);
        let mut es = vec![kinetic_energy(dns)];
        for _ in 0..5 {
            for _ in 0..10 {
                dns.step();
            }
            es.push(kinetic_energy(dns));
        }
        es
    });
    for w in energies.windows(2) {
        assert!(w[1] < w[0], "energy must decay monotonically: {energies:?}");
    }
}
