//! Property-based tests of the core numerical invariants, across crates.

use channel_dns::banded::testmat::CollocationLike;
use channel_dns::banded::{BandedLu, BandedMatrix, CornerBanded, CornerLu, DenseLu};
use channel_dns::bspline::{tanh_breakpoints, BsplineBasis, CollocationOps};
use channel_dns::fft::dealias::{pad_full, truncate_full};
use channel_dns::fft::{CfftPlan, Direction, RealLayout, RfftPlan, C64};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// forward + unnormalised inverse = n * identity, any length
    #[test]
    fn cfft_roundtrip(n in 1usize..200, seed in any::<u64>()) {
        let data = rand_complex(n, seed);
        let fwd = CfftPlan::new(n, Direction::Forward);
        let inv = CfftPlan::new(n, Direction::Inverse);
        let mut x = data.clone();
        let mut scratch = fwd.make_scratch();
        fwd.execute(&mut x, &mut scratch);
        inv.execute(&mut x, &mut scratch);
        for (a, b) in x.iter().zip(&data) {
            prop_assert!((a / n as f64 - b).norm() < 1e-9);
        }
    }

    /// Parseval for every length
    #[test]
    fn cfft_parseval(n in 1usize..160, seed in any::<u64>()) {
        let data = rand_complex(n, seed);
        let time: f64 = data.iter().map(|v| v.norm_sqr()).sum();
        let plan = CfftPlan::new(n, Direction::Forward);
        let mut x = data;
        let mut scratch = plan.make_scratch();
        plan.execute(&mut x, &mut scratch);
        let freq: f64 = x.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() < 1e-8 * time.max(1.0));
    }

    /// real transform roundtrip for every even length
    #[test]
    fn rfft_roundtrip(h in 1usize..100, seed in any::<u64>()) {
        let n = 2 * h;
        let data: Vec<f64> = rand_complex(n, seed).into_iter().map(|c| c.re).collect();
        let plan = RfftPlan::new(n, RealLayout::WithNyquist);
        let mut spec = vec![C64::new(0.0, 0.0); plan.spectrum_len()];
        let mut back = vec![0.0; n];
        let mut scratch = plan.make_scratch();
        plan.forward(&data, &mut spec, &mut scratch);
        plan.inverse(&spec, &mut back, &mut scratch);
        for (a, b) in back.iter().zip(&data) {
            prop_assert!((a / n as f64 - b).abs() < 1e-10);
        }
    }

    /// 3/2-rule pad then truncate is the identity on dealiased spectra
    #[test]
    fn dealias_pad_truncate_identity(quarter in 1usize..25, seed in any::<u64>()) {
        // grids are multiples of 4 so the 3/2-padded size stays even,
        // exactly as the solver requires
        let n = 4 * quarter;
        let half = n / 2;
        let mut spec = rand_complex(n, seed);
        spec[half] = C64::new(0.0, 0.0); // no Nyquist in the solution basis
        let m = 3 * n / 2;
        let mut padded = vec![C64::new(0.0, 0.0); m];
        pad_full(&spec, &mut padded);
        let mut back = vec![C64::new(0.0, 0.0); n];
        truncate_full(&padded, &mut back);
        for (a, b) in back.iter().zip(&spec) {
            prop_assert!((a - b).norm() < 1e-15);
        }
    }

    /// corner-folded custom LU equals dense LU on random diagonally
    /// dominant corner matrices
    #[test]
    fn corner_lu_matches_dense(
        n in 8usize..40,
        kl in 1usize..5,
        ku in 1usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(n > kl + ku);
        let m = random_corner(n, kl, ku, seed);
        let dense = DenseLu::factor(n, &m.to_dense()).unwrap();
        let rhs: Vec<f64> = rand_complex(n, seed ^ 0xABCD).into_iter().map(|c| c.re).collect();
        let lu = CornerLu::factor(m).unwrap();
        let mut x1 = rhs.clone();
        let mut x2 = rhs;
        lu.solve(&mut x1);
        dense.solve(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    /// general pivoted banded LU equals dense LU on arbitrary random
    /// band shapes (no dominance needed: pivoting)
    #[test]
    fn general_banded_matches_dense(
        n in 5usize..30,
        kl in 0usize..4,
        ku in 0usize..4,
        seed in any::<u64>(),
    ) {
        let mut a = BandedMatrix::<f64>::zeros(n, kl, ku);
        let vals = rand_complex(n * (kl + ku + 1), seed);
        let mut idx = 0;
        for i in 0..n {
            for j in i.saturating_sub(kl)..=(i + ku).min(n - 1) {
                let mut v = vals[idx].re;
                idx += 1;
                if i == j {
                    // keep comfortably invertible
                    v += if v >= 0.0 { 2.0 } else { -2.0 };
                }
                a.set(i, j, v);
            }
        }
        let dense = DenseLu::factor(n, &a.to_dense());
        let banded = BandedLu::factor(&a);
        prop_assume!(dense.is_ok() && banded.is_ok());
        let rhs: Vec<f64> = rand_complex(n, seed ^ 0x1234).into_iter().map(|c| c.im).collect();
        let mut x1 = rhs.clone();
        let mut x2 = rhs;
        banded.unwrap().solve(&mut x1);
        dense.unwrap().solve(&mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// the three Table 1 solvers agree on the collocation-like matrix
    /// for every odd bandwidth
    #[test]
    fn table1_solvers_agree(p in 1usize..8, seed in any::<u64>()) {
        let bw = 2 * p + 1;
        let mut cfg = CollocationLike::table1(bw);
        cfg.n = 64; // keep the property fast
        cfg.seed = seed;
        let rhs = cfg.rhs();
        let lu_c = CornerLu::factor(cfg.corner()).unwrap();
        let lu_z = BandedLu::factor(&cfg.general::<C64>()).unwrap();
        let mut a = rhs.clone();
        let mut b = rhs;
        lu_c.solve_complex(&mut a);
        lu_z.solve(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).norm() < 1e-7);
        }
    }

    /// spline interpolation reproduces any polynomial below the order
    #[test]
    fn spline_interpolates_polynomials(
        order in 4usize..9,
        m in 4usize..16,
        coeffs in prop::collection::vec(-2.0f64..2.0, 1..8),
    ) {
        prop_assume!(coeffs.len() < order);
        prop_assume!(m >= order); // basis must cover the collocation bandwidth
        let basis = BsplineBasis::new(order, &tanh_breakpoints(m, 1.5));
        let ops = CollocationOps::new(&basis);
        let poly = |y: f64| coeffs.iter().rev().fold(0.0, |acc, c| acc * y + c);
        let vals: Vec<f64> = ops.points().iter().map(|&y| poly(y)).collect();
        let c = ops.interpolate(&vals);
        for &y in &[-0.97, -0.5, 0.03, 0.61, 0.98] {
            prop_assert!((basis.eval(&c, y) - poly(y)).abs() < 1e-8);
        }
    }

    /// partition of unity at arbitrary evaluation points
    #[test]
    fn spline_partition_of_unity(
        order in 2usize..9,
        m in 2usize..20,
        x in -1.0f64..1.0,
    ) {
        let basis = BsplineBasis::new(order, &tanh_breakpoints(m, 2.0));
        let (_, vals) = basis.eval_nonzero(x);
        let s: f64 = vals.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-12);
    }
}

fn rand_complex(n: usize, seed: u64) -> Vec<C64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            C64::new(next(), next())
        })
        .collect()
}

fn random_corner(n: usize, kl: usize, ku: usize, seed: u64) -> CornerBanded {
    let nc_top = 1.min(kl);
    let nc_bot = 1.min(ku);
    let mut m = CornerBanded::zeros(n, kl, ku, nc_top, nc_bot);
    let w = kl + ku + 1;
    let vals = rand_complex(n * w, seed);
    let mut idx = 0;
    for i in 0..n {
        let ci = m.col_start(i);
        let wide = i < nc_top || i + nc_bot >= n;
        for j in ci..ci + w {
            let in_band = j + kl >= i && j <= i + ku;
            if in_band || wide {
                let v = if i == j {
                    5.0 + w as f64 + vals[idx].re
                } else {
                    vals[idx].re
                };
                m.set(i, j, v);
            }
            idx += 1;
        }
    }
    m
}
