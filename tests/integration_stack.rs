//! Cross-crate integration tests: the full stack (FFT + pencils +
//! B-splines + banded solves + message passing) combined on problems
//! with known answers.

use channel_dns::bspline::{tanh_breakpoints, BsplineBasis, CollocationOps};
use channel_dns::core_solver::wallnormal::ModeSolver;
use channel_dns::fft::C64;
use channel_dns::minimpi;
use channel_dns::pencil::{ExchangeStrategy, RowsPlacement, TransposePlan};
use channel_dns::pfft::{ParallelFft, PfftConfig};

/// Solve the 3D Helmholtz problem `laplacian(u) - c u = f` in the
/// channel geometry (periodic x/z, Dirichlet y) with a manufactured
/// solution, through the full distributed pipeline: forward transform of
/// `f`, per-mode banded solves, inverse transform of `u`.
#[test]
fn manufactured_helmholtz_solution_through_the_full_stack() {
    let results = minimpi::run(4, |world| {
        let (nx, ny, nz) = (16usize, 33usize, 16usize);
        let cfg = PfftConfig::customized(nx, ny, nz, 2, 2);
        let p = ParallelFft::new(world, cfg);
        let basis = BsplineBasis::new(8, &tanh_breakpoints(ny - 7, 1.5));
        let ops = CollocationOps::new(&basis);
        let c = 4.0_f64;

        // manufactured u = sin(pi (y+1)) (1 + cos(x) + sin(2 z))
        let g = |y: f64| (std::f64::consts::PI * (y + 1.0)).sin();
        let gpp = |y: f64| -std::f64::consts::PI.powi(2) * g(y);
        let u_exact = |x: f64, y: f64, z: f64| g(y) * (1.0 + x.cos() + (2.0 * z).sin());
        // f = u_xx + u_yy + u_zz - c u
        let f_exact = |x: f64, y: f64, z: f64| {
            let hor = 1.0 + x.cos() + (2.0 * z).sin();
            gpp(y) * hor + g(y) * (-x.cos() - 4.0 * (2.0 * z).sin()) - c * u_exact(x, y, z)
        };

        // fill this rank's x-pencil of f (y index via the y block)
        let (px, pz) = (p.config().px(), p.config().pz());
        let mut data = Vec::with_capacity(p.x_pencil_len());
        for yl in 0..p.y_block().len {
            let y = ops.points()[p.y_block().global(yl)];
            for zl in 0..p.zphys_block().len {
                let z = std::f64::consts::TAU * p.zphys_block().global(zl) as f64 / pz as f64;
                for xi in 0..px {
                    let x = std::f64::consts::TAU * xi as f64 / px as f64;
                    data.push(f_exact(x, y, z));
                }
            }
        }
        let spec_f = p.forward(&data);

        // per-mode solve: (D2 - (k^2 + c)) u_k = f_k with u(+-1) = 0,
        // via the Helmholtz machinery used by the DNS time advance:
        // ModeSolver's operator is B0 + beta*nu*dt*(k2h*B0 - B2); choose
        // beta*nu*dt = 1 by scaling: solve (B0*(1 + k2h) - B2) u = -f ...
        // Here assemble directly with the collocation operators instead.
        let nyl = ny; // y complete in the y-pencil
        let mut spec_u = vec![C64::new(0.0, 0.0); spec_f.len()];
        for kzl in 0..p.kz_block().len {
            let kz = p.kz_signed(p.kz_block().global(kzl)) as f64;
            for kxl in 0..p.kx_block().len {
                let kx = p.kx_block().global(kxl) as f64;
                let k2 = kx * kx + kz * kz;
                let line = (kzl * p.kx_block().len + kxl) * nyl;
                // operator (B2 - (k2 + c) B0), Dirichlet rows
                let mut m = ops.combine(-(k2 + c), 0.0, 1.0);
                ops.set_boundary_row(&mut m, 0, -1.0, 0);
                ops.set_boundary_row(&mut m, nyl - 1, 1.0, 0);
                let lu = channel_dns::banded::CornerLu::factor(m).unwrap();
                let mut rhs: Vec<C64> = spec_f[line..line + nyl].to_vec();
                rhs[0] = C64::new(0.0, 0.0);
                rhs[nyl - 1] = C64::new(0.0, 0.0);
                lu.solve_complex(&mut rhs);
                // rhs now holds spline coefficients; evaluate at points
                let mut vals = vec![C64::new(0.0, 0.0); nyl];
                ops.b0().matvec_complex(&rhs, &mut vals);
                spec_u[line..line + nyl].copy_from_slice(&vals);
            }
        }

        let u_num = p.inverse(&spec_u);
        // compare on the physical grid
        let mut worst = 0.0f64;
        let mut idx = 0;
        for yl in 0..p.y_block().len {
            let y = ops.points()[p.y_block().global(yl)];
            for zl in 0..p.zphys_block().len {
                let z = std::f64::consts::TAU * p.zphys_block().global(zl) as f64 / pz as f64;
                for xi in 0..px {
                    let x = std::f64::consts::TAU * xi as f64 / px as f64;
                    worst = worst.max((u_num[idx] - u_exact(x, y, z)).abs());
                    idx += 1;
                }
            }
        }
        worst
    });
    for w in results {
        assert!(w < 1e-6, "manufactured-solution error {w}");
    }
}

/// The DNS Helmholtz ModeSolver is the same operator family: verify it
/// against an independently assembled solve for one wavenumber.
#[test]
fn mode_solver_matches_direct_assembly() {
    let basis = BsplineBasis::new(8, &tanh_breakpoints(26, 2.0));
    let ops = CollocationOps::new(&basis);
    let (nu, dt, k2) = (0.01, 2e-3, 6.5);
    let ms = ModeSolver::new(&ops, k2, nu, dt);
    let n = ops.n();
    let c0: Vec<C64> = (0..n)
        .map(|j| C64::new((0.3 * j as f64).sin(), (0.17 * j as f64).cos()))
        .collect();
    let nl = vec![C64::new(0.2, -0.1); n];
    let mut got = c0.clone();
    ms.advance(&ops, 2, &mut got, &nl, &nl, nu, dt);

    // independent assembly of the same substep (beta_3 = gamma_3+zeta_3
    // handled explicitly)
    let beta = 1.0 / 6.0;
    let alpha = 1.0 / 6.0;
    let gamma = 0.75;
    let zeta = -5.0 / 12.0;
    let cc = beta * nu * dt;
    let mut m = ops.combine(1.0 + cc * k2, 0.0, -cc);
    ops.set_boundary_row(&mut m, 0, -1.0, 0);
    ops.set_boundary_row(&mut m, n - 1, 1.0, 0);
    let lu = channel_dns::banded::CornerLu::factor(m).unwrap();
    let mut b0c = vec![C64::new(0.0, 0.0); n];
    let mut b2c = vec![C64::new(0.0, 0.0); n];
    ops.b0().matvec_complex(&c0, &mut b0c);
    ops.b2().matvec_complex(&c0, &mut b2c);
    let mut rhs: Vec<C64> = (0..n)
        .map(|j| b0c[j] + nu * dt * alpha * (b2c[j] - k2 * b0c[j]) + dt * (gamma + zeta) * nl[j])
        .collect();
    rhs[0] = C64::new(0.0, 0.0);
    rhs[n - 1] = C64::new(0.0, 0.0);
    lu.solve_complex(&mut rhs);
    for (a, b) in got.iter().zip(&rhs) {
        assert!((a - b).norm() < 1e-12);
    }
}

/// Distributed transposes compose: a full y -> z -> x -> z -> y pencil
/// cycle over both sub-communicators restores the field exactly.
#[test]
fn pencil_cycle_over_both_communicators_is_identity() {
    let results = minimpi::run(6, |world| {
        let me = world.rank();
        let cart = minimpi::CartComm::new(world, &[3, 2]);
        let comm_a = cart.sub(0);
        let comm_b = cart.sub(1);
        let (nx, ny, nz) = (12usize, 10usize, 9usize);
        let nyl = channel_dns::pencil::block_len(ny, 2, comm_b.rank());
        let sxl = channel_dns::pencil::block_len(nx, 3, comm_a.rank());
        // y-pencil [kz_loc][kx_loc][y] -> z-pencil [y_loc][kx_loc][kz]
        let t_yz = TransposePlan::with_placement(
            &comm_b,
            sxl,
            nz,
            ny,
            ExchangeStrategy::Pairwise,
            RowsPlacement::Middle,
        );
        // z-pencil [y_loc][kx_loc][z] -> x-pencil [y_loc][z_loc][x]
        let t_zx = TransposePlan::new(&comm_a, nyl, nx, nz, ExchangeStrategy::AllToAll);
        let field: Vec<f64> = (0..t_yz.input_len())
            .map(|i| (i as f64 * 0.73).sin() + me as f64)
            .collect();
        let zp = t_yz.run(&comm_b, &field);
        let xp = t_zx.run(&comm_a, &zp);
        let zp2 = t_zx.inverse(&comm_a).run(&comm_a, &xp);
        let back = t_yz.inverse(&comm_b).run(&comm_b, &zp2);
        back == field
    });
    assert!(results.into_iter().all(|ok| ok));
}
