//! Long-running turbulence validation (ignored by default — several
//! minutes of compute). Run explicitly with:
//!
//! ```text
//! cargo test --release --test long_turbulence -- --ignored
//! ```

use channel_dns::core_solver::stats::{profiles, reichardt_u_plus, RunningStats};
use channel_dns::core_solver::{run_serial, Params};

fn minimal_params() -> Params {
    let mut p = Params::channel(32, 65, 32, 180.0).with_dt(5e-4);
    p.lx = 2.4;
    p.lz = 1.0;
    p.grid_stretch = 1.9;
    p
}

/// The minimal channel transitions and *sustains* turbulence: after the
/// transient, the fluctuation level stays within a physical band for
/// thousands of steps and never blows up.
#[test]
#[ignore = "several minutes: run with -- --ignored"]
fn minimal_channel_sustains_turbulence() {
    let history = run_serial(minimal_params(), |dns| {
        dns.set_laminar(0.3);
        dns.add_perturbation(0.5, 2024);
        let mut hist = Vec::new();
        for s in 1..=6000 {
            dns.step();
            if s % 200 == 0 {
                let p = profiles(dns);
                let peak = p.uu.iter().cloned().fold(0.0f64, f64::max);
                assert!(peak.is_finite(), "blow-up at step {s}");
                hist.push((s, peak, p.u_tau));
            }
        }
        hist
    });
    // after the transient (step 3000+): turbulent fluctuation band
    for &(s, peak, u_tau) in history.iter().filter(|(s, ..)| *s >= 3000) {
        assert!(
            (1.0..200.0).contains(&peak),
            "step {s}: peak u'u' = {peak} outside the turbulent band"
        );
        assert!(u_tau > 0.4, "step {s}: u_tau = {u_tau} (relaminarised?)");
    }
}

/// With long averaging, the mean profile tracks the law of the wall to
/// a few wall units through the buffer layer.
#[test]
#[ignore = "several minutes: run with -- --ignored"]
fn mean_profile_approaches_the_law_of_the_wall() {
    let mean = run_serial(minimal_params(), |dns| {
        dns.set_laminar(0.3);
        dns.add_perturbation(0.5, 7);
        // transient
        for _ in 0..4000 {
            dns.step();
        }
        let mut acc = RunningStats::new();
        for s in 0..4000 {
            dns.step();
            if s % 20 == 0 {
                acc.add(&profiles(dns));
            }
        }
        acc.mean()
    });
    let yp = mean.y_plus();
    let up = mean.u_plus();
    for (j, (&y, &u)) in yp.iter().zip(&up).enumerate() {
        if !(1.0..=30.0).contains(&y) || j > mean.y.len() / 2 {
            continue;
        }
        let want = reichardt_u_plus(y);
        assert!(
            (u - want).abs() < 0.35 * want.max(2.0),
            "y+ = {y:.1}: u+ = {u:.2} vs law-of-wall {want:.2}"
        );
    }
}
