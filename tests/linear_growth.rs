//! The crown validation: the *nonlinear* DNS, seeded with an
//! infinitesimal Orr-Sommerfeld eigenfunction on the laminar base flow,
//! must amplify it at the analytic growth rate — tying the full
//! production pipeline (transforms, transposes, dealiased products,
//! implicit solves, influence matrix) to linear stability theory.
//!
//! Setup: plane Poiseuille at centreline Reynolds number 10^4 with
//! `alpha = 1` (so `Lx = 2 pi` in half-height units). In friction
//! scaling with `F = 1`, the laminar equilibrium has
//! `U_c = 1/(2 nu)`, so `Re_c = U_c / nu = 1/(2 nu^2)`. The
//! Tollmien-Schlichting mode grows like `exp(alpha c_i U_c t)` with
//! Orszag's `c_i = 0.00373967` (the eigenvalue is expressed in units of
//! the centreline velocity).

use channel_dns::bspline::integration_weights;
use channel_dns::core_solver::orrsommerfeld::{least_stable, ORSZAG_C};
use channel_dns::core_solver::stats::profiles;
use channel_dns::core_solver::{run_serial, Params};
use channel_dns::fft::C64;

#[test]
fn ts_wave_grows_at_the_orr_sommerfeld_rate() {
    // nu such that Re_centerline = 1/(2 nu^2) = 10^4
    let nu = (1.0 / (2.0e4_f64)).sqrt();
    let u_c = 1.0 / (2.0 * nu);
    let mut params = Params::channel(8, 81, 4, 1.0 / nu).with_dt(5.0e-4);
    params.lx = std::f64::consts::TAU; // alpha = 1
    params.lz = std::f64::consts::PI;
    params.grid_stretch = 1.2;

    // the eigenfunction from the stability solver
    let eig = least_stable(96, 1.0e4, 1.0, C64::new(0.2375, 0.0037));
    assert!((eig.c - ORSZAG_C).norm() < 1e-4);
    let sigma = eig.c.im * u_c; // dimensional growth rate (alpha = 1)

    let (measured_sigma, amp0, amp1) = run_serial(params, move |dns| {
        dns.set_laminar(1.0);
        // seed v at (kx = 1, kz = 0) with a tiny amplitude so the
        // nonlinear feedback stays far below rounding relevance
        let amp = 1e-6;
        let vals: Vec<C64> = dns
            .ops()
            .points()
            .iter()
            .map(|&y| amp * eig.eval_v(y))
            .collect();
        let c_v = dns.ops().interpolate_complex(&vals);
        let c_omega = vec![C64::new(0.0, 0.0); dns.params().ny];
        dns.seed_mode(1, 0, &c_v, &c_omega);

        // fluctuation "amplitude" = sqrt of the y-integrated v variance
        let weights = integration_weights(dns.ops());
        let amplitude = |dns: &channel_dns::core_solver::ChannelDns| -> f64 {
            let p = profiles(dns);
            p.vv.iter()
                .zip(&weights)
                .map(|(v, w)| v * w)
                .sum::<f64>()
                .sqrt()
        };
        let a0 = amplitude(dns);
        let steps = 600usize;
        for _ in 0..steps {
            dns.step();
        }
        let a1 = amplitude(dns);
        let t = steps as f64 * dns.params().dt;
        ((a1 / a0).ln() / t, a0, a1)
    });

    assert!(
        amp0 > 0.0 && amp1 > amp0,
        "the TS wave must grow: {amp0} -> {amp1}"
    );
    let rel = (measured_sigma - sigma).abs() / sigma.abs();
    assert!(
        rel < 0.05,
        "growth rate {measured_sigma:.5} vs Orr-Sommerfeld {sigma:.5} ({:.1}% off)",
        100.0 * rel
    );
}
