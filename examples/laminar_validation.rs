//! Physics validation on analytically-known solutions:
//!
//! 1. laminar Poiseuille flow is held steady by the full nonlinear
//!    solver (pressure gradient balances viscous stress);
//! 2. a Stokes mode decays at its analytic rate;
//! 3. the flow started from rest accelerates at the forcing rate.
//!
//! ```text
//! cargo run --release --example laminar_validation
//! ```

use channel_dns::core_solver::stats::profiles;
use channel_dns::core_solver::{run_serial, Forcing, Params};

fn main() {
    println!("=== 1. Poiseuille equilibrium (full nonlinear solver) ===");
    let p = Params::channel(16, 25, 16, 40.0).with_dt(2e-3);
    run_serial(p, |dns| {
        dns.set_laminar(1.0);
        let before = profiles(dns);
        for _ in 0..100 {
            dns.step();
        }
        let after = profiles(dns);
        let drift = before
            .u_mean
            .iter()
            .zip(&after.u_mean)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!(
            "max |u(t=0.2) - u(0)| = {drift:.2e} (centreline u = {:.1})",
            after.u_mean[after.u_mean.len() / 2]
        );
        assert!(drift < 1e-7, "Poiseuille must be steady");
        println!("PASS: laminar equilibrium is steady\n");
    });

    println!("=== 2. Stokes decay of a perturbation (no forcing) ===");
    let mut p = Params::channel(16, 33, 16, 40.0).with_dt(1e-3);
    p.forcing = Forcing::None;
    p.nonlinear = false;
    run_serial(p, |dns| {
        dns.add_perturbation(0.1, 3);
        let e0 = channel_dns::core_solver::stats::kinetic_energy(dns);
        for _ in 0..200 {
            dns.step();
        }
        let e1 = channel_dns::core_solver::stats::kinetic_energy(dns);
        println!("energy {e0:.3e} -> {e1:.3e} over t = 0.2 (monotone viscous decay)");
        assert!(e1 < e0, "Stokes flow must decay");
        println!("PASS: unforced linear perturbations decay\n");
    });

    println!("=== 3. Start-up from rest ===");
    let p = Params::channel(16, 25, 16, 1000.0).with_dt(1e-3);
    run_serial(p, |dns| {
        for _ in 0..20 {
            dns.step();
        }
        let prof = profiles(dns);
        let want = dns.state().time; // du/dt = F = 1 away from walls
        let got = prof.u_mean[prof.u_mean.len() / 2];
        println!("centreline u = {got:.4} after t = {want:.3} (expected ~ F t = {want:.3})");
        assert!((got - want).abs() < 0.05 * want);
        println!("PASS: pressure-gradient forcing accelerates the flow correctly");
    });
}
