//! Constant-mass-flux forcing: the other standard way to drive a channel
//! (the paper's pressure-gradient forcing keeps `u_tau` fixed and lets
//! the flux float; flux forcing fixes the flux and reads `u_tau` off the
//! controller's learned body force).
//!
//! ```text
//! cargo run --release --example constant_flux
//! ```

use channel_dns::core_solver::stats::profiles;
use channel_dns::core_solver::{run_serial, Forcing, Params};

fn main() {
    let mut params = Params::channel(16, 33, 16, 80.0).with_dt(1e-3);
    let target = 10.0;
    params.forcing = Forcing::ConstantMassFlux { bulk: target };
    println!("flux-driven channel: target bulk velocity {target}");
    run_serial(params, move |dns| {
        // start from rest: the controller must find the right force
        for s in 1..=120 {
            dns.step();
            if s % 20 == 0 {
                let p = profiles(dns);
                println!(
                    "step {s:4}  bulk = {:7.3}  controller force = {:.4}  u_tau = {:.3}",
                    p.bulk_velocity,
                    dns.current_force(),
                    p.u_tau
                );
            }
        }
        let p = profiles(dns);
        assert!(
            (p.bulk_velocity - target).abs() < 0.02 * target,
            "controller must hold the flux"
        );
        println!(
            "\nPASS: flux held at {:.3} (once statistically steady, the mean",
            p.bulk_velocity
        );
        println!("controller force measures the wall drag per unit volume)");
    });
}
