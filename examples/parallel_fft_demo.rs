//! The parallel pencil FFT on its own: plan, transform, inspect the
//! planner's choice, compare the customized kernel with the P3DFFT-like
//! baseline (section 4.4 of the paper).
//!
//! ```text
//! cargo run --release --example parallel_fft_demo
//! ```

use channel_dns::minimpi;
use channel_dns::pfft::{ParallelFft, PfftConfig};

fn main() {
    // 4 rank-threads arranged as a 2 x 2 CommA x CommB grid
    let results = minimpi::run(4, |world| {
        let rank = world.rank();
        let cfg = PfftConfig::customized(64, 16, 32, 2, 2).with_dealias();
        let p = ParallelFft::new(world, cfg);

        // fill this rank's x-pencil with a band-limited field
        let (px, pz) = (p.config().px(), p.config().pz());
        let mut data = Vec::with_capacity(p.x_pencil_len());
        for _y in 0..p.y_block().len {
            for zl in 0..p.zphys_block().len {
                let z = std::f64::consts::TAU * p.zphys_block().global(zl) as f64 / pz as f64;
                for xi in 0..px {
                    let x = std::f64::consts::TAU * xi as f64 / px as f64;
                    data.push(1.0 + (3.0 * x).cos() + 0.5 * (2.0 * x - 4.0 * z).sin());
                }
            }
        }

        let spec = p.forward(&data);
        // count the energetic modes this rank owns
        let ny = p.config().ny;
        let mut found = Vec::new();
        for kzl in 0..p.kz_block().len {
            for kxl in 0..p.kx_block().len {
                let c = spec[(kzl * p.kx_block().len + kxl) * ny];
                if c.norm() > 1e-10 {
                    found.push((
                        p.kx_block().global(kxl),
                        p.kz_signed(p.kz_block().global(kzl)),
                        c,
                    ));
                }
            }
        }
        let back = p.inverse(&spec);
        let err = data
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let stats = (p.comm_a().stats(), p.comm_b().stats());
        (rank, found, err, stats)
    });

    for (rank, found, err, (sa, sb)) in results {
        println!("rank {rank}: roundtrip max error {err:.2e}");
        for (kx, kz, c) in found {
            println!("   mode (kx={kx}, kz={kz:+}): {c:.3}");
        }
        println!(
            "   traffic: CommA {} msgs / {} B, CommB {} msgs / {} B",
            sa.messages_sent, sa.bytes_sent, sb.messages_sent, sb.bytes_sent
        );
    }
    println!("\nexpected: (0,0) -> 1, (3,0) -> 0.5, (2,-4) -> -+0.25i, plus exact roundtrip.");
}
