//! A minimal turbulent channel: transition from a perturbed laminar
//! profile toward sustained near-wall turbulence, with live statistics.
//!
//! ```text
//! cargo run --release --example turbulent_minimal_channel [steps]
//! ```
//!
//! This is the laptop-scale stand-in for the paper's Re_tau = 5200
//! production run (see DESIGN.md): identical code path, small box.

use channel_dns::core_solver::io::{ascii_art, gather_physical};
use channel_dns::core_solver::stats::{profiles, RunningStats};
use channel_dns::core_solver::{run_serial, Params};

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let mut params = Params::channel(32, 65, 32, 180.0);
    params.lx = 2.4;
    params.lz = 1.0;
    params.dt = 5e-4;
    params.grid_stretch = 1.9;
    println!(
        "minimal channel: {}x{}x{} modes, box {:.1} x 2 x {:.1}, Re_tau target 180",
        params.nx, params.ny, params.nz, params.lx, params.lz
    );
    run_serial(params, move |dns| {
        dns.set_laminar(0.3);
        dns.add_perturbation(0.5, 2024);
        let mut acc = RunningStats::new();
        for s in 1..=steps {
            dns.step();
            if s % (steps / 8).max(1) == 0 {
                let p = profiles(dns);
                println!(
                    "step {s:5}  t = {:.2}  u_tau = {:.3}  Re_tau = {:5.1}  peak u'u' = {:.2}",
                    dns.state().time,
                    p.u_tau,
                    p.re_tau,
                    p.uu.iter().cloned().fold(0.0, f64::max)
                );
                if s > steps / 2 {
                    acc.add(&p);
                }
            }
        }
        if acc.count() > 0 {
            let m = acc.mean();
            println!(
                "\naveraged over the last half: u_tau = {:.3}, Re_tau = {:.1}",
                m.u_tau, m.re_tau
            );
        }
        if let Some(field) = gather_physical(dns, dns.state().u()) {
            let (w, h, slice) = field.slice_xy(field.nz / 2);
            println!("\ninstantaneous u(x, y) at mid-span:");
            println!("{}", ascii_art(w, h, &slice, 80, 18));
        }
    });
}
