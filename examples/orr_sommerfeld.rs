//! Linear-stability validation: reproduce Orszag's (1971) celebrated
//! Orr-Sommerfeld eigenvalue for plane Poiseuille flow with the same
//! B-spline collocation operators the DNS uses.
//!
//! ```text
//! cargo run --release --example orr_sommerfeld
//! ```

use channel_dns::core_solver::orrsommerfeld::{least_stable, ORSZAG_C};
use channel_dns::fft::C64;

fn main() {
    println!("Orr-Sommerfeld, plane Poiseuille, Re = 10^4, alpha = 1");
    println!("reference (Orszag 1971): c = {ORSZAG_C}\n");
    println!(
        "{:>4}  {:>42}  {:>9}  {:>4}",
        "ny", "c (this discretisation)", "error", "iter"
    );
    for ny in [48usize, 64, 96, 128] {
        let r = least_stable(ny, 1e4, 1.0, C64::new(0.2375, 0.0037));
        println!(
            "{ny:>4}  {:>42}  {:>9.2e}  {:>4}",
            format!("{}", r.c),
            (r.c - ORSZAG_C).norm(),
            r.iterations
        );
    }
    println!("\nthe mode is (famously, slightly) unstable: Im c > 0 at Re = 10^4.");
    println!("sweep of the instability threshold (alpha = 1.02, near criticality):");
    for re in [4000.0f64, 5500.0, 5772.0, 6000.0, 8000.0] {
        let r = least_stable(80, re, 1.02, C64::new(0.26, 0.0));
        println!(
            "  Re = {re:>6.0}: Im c = {:+.6}  ({})",
            r.c.im,
            if r.c.im > 0.0 { "unstable" } else { "stable" }
        );
    }
    println!("\n(the classical critical Reynolds number is 5772 at alpha = 1.02;");
    println!("the collocation boundary treatment biases Im c by ~1e-4, shifting");
    println!("the apparent threshold upward — the growth-rate *trend* with Re is");
    println!("what this sweep demonstrates)");
}
