//! Checkpoint/restart: run, save, reload into a fresh solver, continue —
//! and verify the restarted trajectory is bit-identical to an unbroken
//! run (the restart discipline any 650,000-step production campaign
//! depends on).
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use channel_dns::core_solver::stats::profiles;
use channel_dns::core_solver::{checkpoint, run_serial, Params};

fn main() {
    let dir = std::env::temp_dir().join("channel_dns_example_ckpt");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stem = dir.join("state");
    let params = Params::channel(16, 25, 16, 80.0).with_dt(1e-3);

    // reference: 10 uninterrupted steps
    let p1 = params.clone();
    let reference = run_serial(p1, |dns| {
        dns.set_laminar(0.5);
        dns.add_perturbation(0.3, 99);
        for _ in 0..10 {
            dns.step();
        }
        profiles(dns).u_mean
    });

    // part 1: 5 steps, checkpoint
    let p2 = params.clone();
    let stem2 = stem.clone();
    run_serial(p2, move |dns| {
        dns.set_laminar(0.5);
        dns.add_perturbation(0.3, 99);
        for _ in 0..5 {
            dns.step();
        }
        checkpoint::save(dns, &stem2).expect("save");
        println!(
            "checkpointed at step {} -> {}",
            dns.state().steps,
            checkpoint::rank_path(&stem2, dns).display()
        );
    });

    // part 2: fresh solver, resume, 5 more steps
    let stem3 = stem.clone();
    let restarted = run_serial(params, move |dns| {
        checkpoint::load(dns, &stem3).expect("load");
        println!(
            "resumed at step {} (t = {:.4})",
            dns.state().steps,
            dns.state().time
        );
        for _ in 0..5 {
            dns.step();
        }
        profiles(dns).u_mean
    });

    let worst = reference
        .iter()
        .zip(&restarted)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max |u_restarted - u_reference| = {worst:.2e}");
    assert!(worst < 1e-13, "restart must be bit-faithful");
    println!("PASS: restart reproduces the uninterrupted trajectory");
}
