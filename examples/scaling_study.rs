//! Scaling study: predict the full production run on the modelled
//! machines and measure the real code's rank scaling on this host.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use channel_dns::core_solver::{run_parallel, Params};
use channel_dns::netmodel::dnscost::{timestep_phases, Grid, Parallelism};
use channel_dns::netmodel::Machine;

fn main() {
    println!("=== modelled: the paper's production run on Mira ===");
    // Re_tau = 5200 production grid: 10240 x 1536 x 7680 modes
    let g = Grid {
        nx: 10240,
        ny: 1536,
        nz: 7680,
    };
    println!(
        "grid {} x {} x {} = {:.0}e9 DOF (the paper's 242 billion)",
        g.nx,
        g.ny,
        g.nz,
        g.dof() / 1e9
    );
    let m = Machine::mira();
    for cores in [131_072usize, 262_144, 524_288] {
        let p = timestep_phases(&m, &g, cores, Parallelism::Hybrid);
        let per_flow_through = 50_000.0 * p.total() / 3600.0;
        println!(
            "  {cores:>7} cores: {:.1} s/step -> {:.0} hours per flow-through (x13 needed)",
            p.total(),
            per_flow_through
        );
    }
    println!("  (the paper budgets 260M core-hours for 650k steps on 524,288 cores)");

    println!("\n=== measured: rank scaling of the real solver on this host ===");
    println!("(single-core machine: expect no speedup, only the overhead of more ranks)");
    for (pa, pb) in [(1usize, 1usize), (2, 1), (2, 2)] {
        let p = Params::channel(32, 33, 32, 100.0)
            .with_dt(5e-4)
            .with_grid(pa, pb);
        let t = run_parallel(p, |dns| {
            dns.set_laminar(0.3);
            dns.add_perturbation(0.2, 5);
            dns.step(); // warm-up
            let t0 = std::time::Instant::now();
            for _ in 0..3 {
                dns.step();
            }
            t0.elapsed().as_secs_f64() / 3.0
        });
        let slowest = t.iter().cloned().fold(0.0, f64::max);
        println!("  {pa} x {pb} ranks: {:.0} ms/step", slowest * 1e3);
    }
}
