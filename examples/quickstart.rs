//! Quickstart: build a small channel DNS, take a few timesteps, print
//! statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use channel_dns::core_solver::stats::profiles;
use channel_dns::core_solver::{run_serial, Params};

fn main() {
    // A tiny channel at friction Reynolds number 100: 32 x 33 x 32
    // modes, default box 2*pi x 2 x pi.
    let params = Params::channel(32, 33, 32, 100.0).with_dt(1e-3);
    println!(
        "channel DNS: {} x {} x {} modes ({:.1}M DOF), Re_tau target {}",
        params.nx,
        params.ny,
        params.nz,
        params.dof() / 1e6,
        1.0 / params.nu
    );

    run_serial(params, |dns| {
        // start from a sub-equilibrium laminar profile plus divergence-
        // free perturbations in the large scales
        dns.set_laminar(0.5);
        dns.add_perturbation(0.3, 7);

        for step in 1..=50 {
            dns.step();
            if step % 10 == 0 {
                let p = profiles(dns);
                println!(
                    "step {step:3}  t = {:.3}  u_tau = {:.3}  bulk U = {:.2}  peak <u'u'> = {:.4}",
                    dns.state().time,
                    p.u_tau,
                    p.bulk_velocity,
                    p.uu.iter().cloned().fold(0.0, f64::max),
                );
            }
        }

        let p = profiles(dns);
        println!("\nmean velocity profile (wall units):");
        for (yp, up) in p.y_plus().iter().zip(p.u_plus()).step_by(4) {
            if *yp <= p.re_tau {
                println!("  y+ = {yp:7.2}   u+ = {up:6.2}");
            }
        }
        println!("\ndone: the full pipeline ran — spectral transforms, pencil");
        println!("transposes, dealiased nonlinear terms, implicit wall-normal solves.");
    });
}
