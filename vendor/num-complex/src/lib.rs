//! Offline stand-in for the `num-complex` crate.
//!
//! The build container has no access to a crates.io mirror, so the
//! workspace vendors the (small) part of `num_complex::Complex` it
//! actually uses: a `#[repr(C)]` complex number over `f64` with the
//! standard arithmetic operators (value and reference forms), the
//! cartesian accessors, and the handful of methods the DNS stack calls
//! (`norm`, `norm_sqr`, `conj`, `is_finite`). Field names, layout and
//! semantics match the real crate, so swapping the real dependency back
//! in is a one-line change in the workspace manifest.

/// A complex number in Cartesian form.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Alias matching `num_complex::Complex64`.
pub type Complex64 = Complex<f64>;

impl<T> Complex<T> {
    /// Build a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

impl Complex<f64> {
    /// The imaginary unit.
    #[inline]
    pub const fn i() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// Squared modulus `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus (uses `hypot` for the same overflow behaviour as the
    /// real crate).
    #[inline]
    pub fn norm(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(&self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Argument (phase angle).
    #[inline]
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Complex exponential.
    #[inline]
    pub fn exp(&self) -> Self {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Build from polar form `r * exp(i theta)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn inv(&self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Multiply by a real scalar (same name as the real crate).
    #[inline]
    pub fn scale(&self, t: f64) -> Self {
        Complex::new(self.re * t, self.im * t)
    }
}

impl From<f64> for Complex<f64> {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl std::fmt::Display for Complex<f64> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im < 0.0 {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

impl std::ops::Neg for Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn neg(self) -> Self::Output {
        Complex::new(-self.re, -self.im)
    }
}

impl std::ops::Neg for &Complex<f64> {
    type Output = Complex<f64>;
    #[inline]
    fn neg(self) -> Self::Output {
        Complex::new(-self.re, -self.im)
    }
}

#[inline]
fn add(a: Complex<f64>, b: Complex<f64>) -> Complex<f64> {
    Complex::new(a.re + b.re, a.im + b.im)
}
#[inline]
fn sub(a: Complex<f64>, b: Complex<f64>) -> Complex<f64> {
    Complex::new(a.re - b.re, a.im - b.im)
}
#[inline]
fn mul(a: Complex<f64>, b: Complex<f64>) -> Complex<f64> {
    Complex::new(a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re)
}
#[inline]
fn div(a: Complex<f64>, b: Complex<f64>) -> Complex<f64> {
    // Smith's algorithm-free form is fine at f64 for this workload.
    let d = b.norm_sqr();
    Complex::new(
        (a.re * b.re + a.im * b.im) / d,
        (a.im * b.re - a.re * b.im) / d,
    )
}

macro_rules! binop_complex {
    ($trait:ident, $method:ident, $f:ident) => {
        impl std::ops::$trait<Complex<f64>> for Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: Complex<f64>) -> Complex<f64> {
                $f(self, rhs)
            }
        }
        impl std::ops::$trait<&Complex<f64>> for Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: &Complex<f64>) -> Complex<f64> {
                $f(self, *rhs)
            }
        }
        impl std::ops::$trait<Complex<f64>> for &Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: Complex<f64>) -> Complex<f64> {
                $f(*self, rhs)
            }
        }
        impl std::ops::$trait<&Complex<f64>> for &Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: &Complex<f64>) -> Complex<f64> {
                $f(*self, *rhs)
            }
        }
    };
}

binop_complex!(Add, add, add);
binop_complex!(Sub, sub, sub);
binop_complex!(Mul, mul, mul);
binop_complex!(Div, div, div);

macro_rules! binop_real {
    ($trait:ident, $method:ident, $expr:expr) => {
        impl std::ops::$trait<f64> for Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: f64) -> Complex<f64> {
                let f: fn(Complex<f64>, f64) -> Complex<f64> = $expr;
                f(self, rhs)
            }
        }
        impl std::ops::$trait<f64> for &Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: f64) -> Complex<f64> {
                let f: fn(Complex<f64>, f64) -> Complex<f64> = $expr;
                f(*self, rhs)
            }
        }
        impl std::ops::$trait<&f64> for Complex<f64> {
            type Output = Complex<f64>;
            #[inline]
            fn $method(self, rhs: &f64) -> Complex<f64> {
                let f: fn(Complex<f64>, f64) -> Complex<f64> = $expr;
                f(self, *rhs)
            }
        }
    };
}

binop_real!(Add, add, |a, b| Complex::new(a.re + b, a.im));
binop_real!(Sub, sub, |a, b| Complex::new(a.re - b, a.im));
binop_real!(Mul, mul, |a, b| Complex::new(a.re * b, a.im * b));
binop_real!(Div, div, |a, b| Complex::new(a.re / b, a.im / b));

impl std::ops::Add<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn add(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self + rhs.re, rhs.im)
    }
}
impl std::ops::Sub<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn sub(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self - rhs.re, -rhs.im)
    }
}
impl std::ops::Mul<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn mul(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self * rhs.re, self * rhs.im)
    }
}
impl std::ops::Mul<&Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn mul(self, rhs: &Complex<f64>) -> Complex<f64> {
        Complex::new(self * rhs.re, self * rhs.im)
    }
}
impl std::ops::Div<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    #[inline]
    fn div(self, rhs: Complex<f64>) -> Complex<f64> {
        div(Complex::new(self, 0.0), rhs)
    }
}

impl std::ops::AddAssign<Complex<f64>> for Complex<f64> {
    #[inline]
    fn add_assign(&mut self, rhs: Complex<f64>) {
        *self = add(*self, rhs);
    }
}
impl std::ops::SubAssign<Complex<f64>> for Complex<f64> {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex<f64>) {
        *self = sub(*self, rhs);
    }
}
impl std::ops::MulAssign<Complex<f64>> for Complex<f64> {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex<f64>) {
        *self = mul(*self, rhs);
    }
}
impl std::ops::DivAssign<Complex<f64>> for Complex<f64> {
    #[inline]
    fn div_assign(&mut self, rhs: Complex<f64>) {
        *self = div(*self, rhs);
    }
}
impl std::ops::AddAssign<&Complex<f64>> for Complex<f64> {
    #[inline]
    fn add_assign(&mut self, rhs: &Complex<f64>) {
        *self = add(*self, *rhs);
    }
}
impl std::ops::SubAssign<&Complex<f64>> for Complex<f64> {
    #[inline]
    fn sub_assign(&mut self, rhs: &Complex<f64>) {
        *self = sub(*self, *rhs);
    }
}
impl std::ops::MulAssign<&Complex<f64>> for Complex<f64> {
    #[inline]
    fn mul_assign(&mut self, rhs: &Complex<f64>) {
        *self = mul(*self, *rhs);
    }
}
impl std::ops::DivAssign<&Complex<f64>> for Complex<f64> {
    #[inline]
    fn div_assign(&mut self, rhs: &Complex<f64>) {
        *self = div(*self, *rhs);
    }
}
impl std::ops::AddAssign<f64> for Complex<f64> {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        self.re += rhs;
    }
}
impl std::ops::SubAssign<f64> for Complex<f64> {
    #[inline]
    fn sub_assign(&mut self, rhs: f64) {
        self.re -= rhs;
    }
}
impl std::ops::MulAssign<f64> for Complex<f64> {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}
impl std::ops::DivAssign<f64> for Complex<f64> {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        self.re /= rhs;
        self.im /= rhs;
    }
}

impl std::iter::Sum for Complex<f64> {
    fn sum<I: Iterator<Item = Complex<f64>>>(iter: I) -> Self {
        iter.fold(Complex::new(0.0, 0.0), add)
    }
}

impl<'a> std::iter::Sum<&'a Complex<f64>> for Complex<f64> {
    fn sum<I: Iterator<Item = &'a Complex<f64>>>(iter: I) -> Self {
        iter.fold(Complex::new(0.0, 0.0), |a, b| add(a, *b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_hand_results() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = (a * b) / b;
        assert!((q - a).norm() < 1e-15);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(2.0 * a, Complex::new(2.0, 4.0));
        assert_eq!(a * 2.0, Complex::new(2.0, 4.0));
        assert_eq!(a / 2.0, Complex::new(0.5, 1.0));
    }

    #[test]
    fn methods_match_definitions() {
        let c = Complex::new(3.0, -4.0);
        assert_eq!(c.norm(), 5.0);
        assert_eq!(c.norm_sqr(), 25.0);
        assert_eq!(c.conj(), Complex::new(3.0, 4.0));
        assert!(c.is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!((Complex::new(0.0, std::f64::consts::PI).exp() + 1.0).norm() < 1e-15);
        assert!((c.inv() * c - Complex::new(1.0, 0.0)).norm() < 1e-15);
    }

    #[test]
    fn assign_sum_and_display() {
        let mut c = Complex::new(1.0, 1.0);
        c += Complex::new(1.0, 0.0);
        c *= 2.0;
        assert_eq!(c, Complex::new(4.0, 2.0));
        let v = [Complex::new(1.0, 2.0), Complex::new(3.0, 4.0)];
        let s: Complex<f64> = v.iter().sum();
        assert_eq!(s, Complex::new(4.0, 6.0));
        assert_eq!(format!("{}", Complex::new(1.5, -2.0)), "1.5-2i");
    }
}
