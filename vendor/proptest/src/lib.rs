//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(..)]`), `prop_assert!`,
//! `prop_assume!`, numeric `Range` strategies, `any::<T>()`, and
//! `prop::collection::vec`. Cases are drawn from a deterministic
//! splitmix64 stream seeded by the test name, so failures reproduce
//! across runs. No shrinking: a failing case reports its case index
//! instead of a minimised input.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generator: splitmix64 over a name-derived seed.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of entropy.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at the tiny bounds these tests use.
        self.next_u64() % bound
    }
}

/// A source of random values for one macro-level argument.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Values with no constraints ("arbitrary").
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, zero-centred; adequate for numeric property tests.
        (rng.next_f64() - 0.5) * 2.0e6
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec(elem, len_range)`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Define property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes one `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (The stub counts skipped cases as passes rather than redrawing.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0.0f64..1.0, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10, seed in any::<u64>()) {
            prop_assume!(n >= 5);
            let _ = seed;
            prop_assert!(n >= 5);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("alpha");
        let mut b = crate::TestRng::deterministic("alpha");
        let mut c = crate::TestRng::deterministic("beta");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn failing_property_reports_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(n in 0usize..10) {
                    prop_assert!(n > 100, "n was {}", n);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
