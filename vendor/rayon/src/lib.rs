//! Offline stand-in for the `rayon` crate.
//!
//! Provides exactly the surface `dns-pfft` uses: a `ThreadPool` built via
//! `ThreadPoolBuilder::new().num_threads(n).build()`, `ThreadPool::install`,
//! and `par_chunks_exact_mut(..).enumerate().for_each(..)` from the prelude.
//! Parallelism is real (std::thread::scope fan-out over contiguous chunk
//! groups) but there is no work stealing: each worker gets an equal
//! contiguous share of the chunk list, which matches the uniform per-line
//! FFT workloads this repo parallelises.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Worker count established by the innermost `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced; the stub
/// cannot fail to construct a pool).
pub struct ThreadPoolBuildError(());

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ThreadPoolBuildError")
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` (the default) means "use available parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical pool: threads are spawned per parallel call (scoped), not
/// kept resident, so the pool itself is just a worker-count handle.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's worker count active for parallel
    /// iterators reached from inside `op`.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        INSTALLED_THREADS.with(|t| {
            let prev = t.replace(self.num_threads);
            let out = op();
            t.set(prev);
            out
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Worker count seen by parallel iterators on the current thread.
fn active_threads() -> usize {
    INSTALLED_THREADS.with(|t| t.get()).max(1)
}

/// Parallel mutable chunk iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel version of `chunks_exact_mut` (the trailing remainder,
    /// if any, is not visited — same contract as rayon).
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T> {
        assert!(chunk_size != 0, "chunk size must be non-zero");
        ParChunksExactMut {
            data: self,
            chunk_size,
        }
    }
}

pub struct ParChunksExactMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksExactMut<'a, T> {
    pub fn enumerate(self) -> EnumerateChunks<'a, T> {
        EnumerateChunks { inner: self }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        self.enumerate().for_each(move |(_, line)| f(line));
    }
}

pub struct EnumerateChunks<'a, T> {
    inner: ParChunksExactMut<'a, T>,
}

impl<'a, T: Send> EnumerateChunks<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Send + Sync,
    {
        self.for_each_init(|| (), |(), item| f(item));
    }

    /// `for_each` with per-worker state: `init` runs once per worker (not
    /// once per item), and each item sees `&mut` access to its worker's
    /// state — rayon's `for_each_init` contract, used for reusable
    /// per-thread scratch buffers.
    pub fn for_each_init<S, INIT, F>(self, init: INIT, f: F)
    where
        S: Send,
        INIT: Fn() -> S + Send + Sync,
        F: Fn(&mut S, (usize, &mut [T])) + Send + Sync,
    {
        let chunk = self.inner.chunk_size;
        let workers = active_threads();
        let mut items: Vec<(usize, &'a mut [T])> = self
            .inner
            .data
            .chunks_exact_mut(chunk)
            .enumerate()
            .collect();
        if items.is_empty() {
            return;
        }
        if workers <= 1 || items.len() <= 1 {
            let mut state = init();
            for (i, line) in items {
                f(&mut state, (i, line));
            }
            return;
        }
        let per = items.len().div_ceil(workers);
        let fref = &f;
        let iref = &init;
        std::thread::scope(|s| {
            for group in items.chunks_mut(per) {
                s.spawn(move || {
                    let mut state = iref();
                    for (i, line) in group.iter_mut() {
                        fref(&mut state, (*i, line));
                    }
                });
            }
        });
    }
}

pub mod prelude {
    pub use crate::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_visit_every_line_with_correct_index() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data = vec![0usize; 4 * 17];
        pool.install(|| {
            use crate::prelude::*;
            data.par_chunks_exact_mut(4)
                .enumerate()
                .for_each(|(l, line)| {
                    for v in line.iter_mut() {
                        *v = l + 1;
                    }
                });
        });
        for (l, line) in data.chunks_exact(4).enumerate() {
            assert!(line.iter().all(|&v| v == l + 1));
        }
    }

    #[test]
    fn remainder_is_untouched() {
        let mut data = [7u8; 10];
        data.par_chunks_exact_mut(4)
            .enumerate()
            .for_each(|(_, line)| line.fill(0));
        assert_eq!(&data[8..], &[7, 7]);
    }

    #[test]
    fn for_each_init_runs_init_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut data = [0usize; 2 * 12];
        pool.install(|| {
            use crate::prelude::*;
            data.par_chunks_exact_mut(2).enumerate().for_each_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    vec![0u8; 16] // per-worker scratch
                },
                |scratch, (l, line)| {
                    scratch[0] = scratch[0].wrapping_add(1);
                    line.fill(l + 1);
                },
            );
        });
        // one init per spawned worker group, never one per item
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "init ran {n} times");
        for (l, line) in data.chunks_exact(2).enumerate() {
            assert!(line.iter().all(|&v| v == l + 1));
        }
    }

    #[test]
    fn install_restores_previous_count() {
        let calls = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(super::active_threads(), 3);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(super::active_threads(), 1);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}
