//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the same authoring surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`) but replaces the
//! statistical engine with a fast fixed-sample wall-clock median, so
//! `cargo test`/`cargo bench` finish in seconds without network access.
//! Results print as `group/benchmark  median time/iter [throughput]`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark (deliberately tiny: this stub
/// exists so benches compile and smoke-run, not for tight statistics).
const SAMPLES: usize = 7;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for CLI-compatibility; the stub ignores argv filters.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: SAMPLES,
        }
    }
}

/// Units for reporting rates alongside times.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier `function_name/parameter` for parameterised benchmarks.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Cap: the stub's goal is a fast smoke pass, not statistics.
        self.sample_size = n.clamp(1, SAMPLES);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / median)
            }
            _ => String::new(),
        };
        println!("{}/{}  {}{}", self.name, id, format_seconds(median), rate);
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `inner` over a small fixed batch and accumulate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut inner: R) {
        const BATCH: u64 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(inner());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group (for `harness = false` bench targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("add_n", 5), &5u64, |b, &n| {
            b.iter(|| black_box(n) + 1)
        });
        g.finish();
    }

    criterion_group!(benches, bench_addition);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn id_and_units_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(2.5e-3), "2.500 ms");
        assert_eq!(format_seconds(2.5e-6), "2.500 µs");
        assert_eq!(format_seconds(2.5e-9), "2.5 ns");
    }
}
