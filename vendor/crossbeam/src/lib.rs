//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module surface used by `dns-minimpi` is provided:
//! unbounded MPMC-ish channels with `send`, blocking `recv_timeout` and
//! non-blocking `try_recv`. Backed by `std::sync::mpsc`, whose unbounded
//! channel has the same semantics for the single-consumer pattern the
//! rank mesh uses (one inbound receiver per rank thread).

/// Multi-producer channels (the `crossbeam-channel` surface).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Queue a message; never blocks (unbounded buffer).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Return a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Block indefinitely for the next message.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(s), Receiver(r))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (s, r) = unbounded();
            s.send(41u32).unwrap();
            s.clone().send(1).unwrap();
            assert_eq!(r.try_recv().unwrap() + r.recv().unwrap(), 42);
            assert!(matches!(r.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn recv_timeout_expires() {
            let (_s, r) = unbounded::<u8>();
            let e = r.recv_timeout(Duration::from_millis(5));
            assert!(matches!(e, Err(RecvTimeoutError::Timeout)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (s, r) = unbounded();
            let h = std::thread::spawn(move || s.send(7u64).unwrap());
            assert_eq!(r.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
            h.join().unwrap();
        }
    }
}
